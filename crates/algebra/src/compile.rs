//! Step 1 of the paper's workflow: compile openCypher reading clauses to
//! graph relational algebra (GRA), following the mapping of
//! Marton/Szárnyas/Varró (ADBIS 2017) that the paper builds on.

use std::collections::HashMap;

use pgq_common::intern::Symbol;
use pgq_parser::ast::{Clause, Expr, NodePattern, PathPattern, Query, ReturnClause};

use crate::error::AlgebraError;
use crate::gra::{Gra, PathMode, VarKind, VarLen};

/// Result of compiling the reading part of a query.
#[derive(Clone, Debug)]
pub struct ReadPlan {
    /// The GRA tree *before* the final RETURN projection.
    pub body: Gra,
    /// Kind of every bound variable.
    pub kinds: HashMap<String, VarKind>,
}

/// Compiler state threaded through clause compilation.
#[derive(Default)]
pub struct Compiler {
    /// Currently-in-scope variables (narrowed by WITH).
    kinds: HashMap<String, VarKind>,
    /// Every variable ever bound (the algebra tree below a WITH still
    /// references pre-WITH variables, so later pipeline stages need the
    /// full map).
    all_kinds: HashMap<String, VarKind>,
    /// Names dropped by a WITH projection: re-binding them later would
    /// make the generated `var.prop` column names ambiguous, so it is
    /// rejected (rename in the WITH instead).
    retired: std::collections::HashSet<String>,
    fresh: usize,
}

impl Compiler {
    /// Fresh internal variable name (cannot collide with user names, which
    /// never start with `_` followed by our prefixes... they can, so we
    /// include a NUL-free but unlikely marker).
    fn fresh(&mut self, prefix: &str) -> String {
        let name = format!("_{prefix}{}", self.fresh);
        self.fresh += 1;
        name
    }

    fn bind(&mut self, var: &str, kind: VarKind) -> Result<(), AlgebraError> {
        if self.retired.contains(var) && !self.kinds.contains_key(var) {
            return Err(AlgebraError::Unsupported(format!(
                "re-binding `{var}` after it was dropped by WITH; use a different \
                 name or carry it through the WITH"
            )));
        }
        match self.kinds.get(var) {
            None => {
                self.kinds.insert(var.to_string(), kind);
                self.all_kinds.insert(var.to_string(), kind);
                Ok(())
            }
            Some(k) if *k == kind => Ok(()),
            Some(k) => Err(AlgebraError::InvalidQuery(format!(
                "variable `{var}` is already bound as {k:?}, cannot rebind as {kind:?}"
            ))),
        }
    }

    fn is_bound(&self, var: &str) -> bool {
        self.kinds.contains_key(var)
    }

    /// Compile the reading clauses (`MATCH`/`UNWIND`) of `query` into a
    /// GRA body. `RETURN`, update clauses and rejected constructs are
    /// handled by the caller ([`crate::pipeline`]).
    pub fn compile_reading(&mut self, query: &Query) -> Result<ReadPlan, AlgebraError> {
        let mut acc = Gra::Unit;
        for clause in &query.clauses {
            match clause {
                Clause::Match { optional: true, .. } => {
                    return Err(AlgebraError::Unsupported(
                        "OPTIONAL MATCH (listed as future work in the paper)".into(),
                    ))
                }
                Clause::Match {
                    optional: false,
                    pattern,
                    where_clause,
                } => {
                    let mut match_edges: Vec<String> = Vec::new();
                    let mut preds: Vec<Expr> = Vec::new();
                    for path in &pattern.paths {
                        acc = self.compile_path(acc, path, &mut match_edges, &mut preds)?;
                    }
                    // Cypher relationship-uniqueness: single-hop edges of
                    // one MATCH must be pairwise distinct.
                    for i in 0..match_edges.len() {
                        for j in (i + 1)..match_edges.len() {
                            preds.push(Expr::Binary(
                                pgq_parser::ast::BinOp::Neq,
                                Box::new(Expr::Variable(match_edges[i].clone())),
                                Box::new(Expr::Variable(match_edges[j].clone())),
                            ));
                        }
                    }
                    if let Some(w) = where_clause {
                        // Top-level HasLabel conjuncts become joins with ©
                        // (σ_{n:L}(r) ≡ r ⋈ ©(n:L)); `[NOT] exists(pattern)`
                        // conjuncts become semi-/antijoins; the rest stays
                        // in σ.
                        for conj in conjuncts(w) {
                            match conj {
                                Expr::PatternPredicate(p) => {
                                    let sub = self.compile_subpattern(p)?;
                                    acc = Gra::SemiJoin {
                                        left: Box::new(acc),
                                        right: Box::new(sub),
                                        anti: false,
                                    };
                                }
                                Expr::Unary(pgq_parser::ast::UnOp::Not, inner)
                                    if matches!(inner.as_ref(), Expr::PatternPredicate(_)) =>
                                {
                                    let Expr::PatternPredicate(p) = inner.as_ref() else {
                                        unreachable!()
                                    };
                                    let sub = self.compile_subpattern(p)?;
                                    acc = Gra::SemiJoin {
                                        left: Box::new(acc),
                                        right: Box::new(sub),
                                        anti: true,
                                    };
                                }
                                Expr::HasLabel(base, labels) => match base.as_ref() {
                                    Expr::Variable(v) if self.is_bound(v) => {
                                        acc = Gra::Join {
                                            left: Box::new(acc),
                                            right: Box::new(Gra::GetVertices {
                                                var: v.clone(),
                                                labels: labels
                                                    .iter()
                                                    .map(|l| Symbol::intern(l))
                                                    .collect(),
                                            }),
                                        };
                                    }
                                    Expr::Variable(v) => {
                                        return Err(AlgebraError::UnknownVariable(v.clone()))
                                    }
                                    _ => {
                                        return Err(AlgebraError::Unsupported(
                                            "label predicate on a non-variable".into(),
                                        ))
                                    }
                                },
                                other => preds.push(other.clone()),
                            }
                        }
                    }
                    if let Some(pred) = conjoin(preds) {
                        acc = Gra::Select {
                            input: Box::new(acc),
                            predicate: pred,
                        };
                    }
                }
                Clause::Unwind { expr, alias } => {
                    if self.is_bound(alias) {
                        return Err(AlgebraError::InvalidQuery(format!(
                            "UNWIND alias `{alias}` is already bound"
                        )));
                    }
                    let kind = unwind_kind(expr);
                    self.bind(alias, kind)?;
                    acc = Gra::Unwind {
                        input: Box::new(acc),
                        expr: expr.clone(),
                        alias: alias.clone(),
                    };
                }
                Clause::With { body, where_clause } => {
                    acc = self.compile_with(acc, body, where_clause.as_ref())?;
                }
                Clause::Return(_)
                | Clause::Create(_)
                | Clause::Delete { .. }
                | Clause::Set(_)
                | Clause::Remove(_) => {
                    // Handled by the pipeline / engine layers.
                }
            }
        }
        Ok(ReadPlan {
            body: acc,
            kinds: self.all_kinds.clone(),
        })
    }

    /// Compile one path pattern, joining it onto `acc`.
    fn compile_path(
        &mut self,
        acc: Gra,
        path: &PathPattern,
        match_edges: &mut Vec<String>,
        preds: &mut Vec<Expr>,
    ) -> Result<Gra, AlgebraError> {
        let (start_var, start_scan) = self.node_part(&path.start, preds)?;
        let mut cur = match start_scan {
            Some(scan) => join(acc, scan),
            None => acc,
        };

        let named_path = match &path.variable {
            Some(t) => {
                self.bind(t, VarKind::Path)?;
                cur = Gra::PathStart {
                    input: Box::new(cur),
                    node: start_var.clone(),
                    path: t.clone(),
                };
                Some(t.clone())
            }
            None => None,
        };

        let mut prev_var = start_var;
        let mut prev_labels: Vec<Symbol> = path
            .start
            .labels
            .iter()
            .map(|l| Symbol::intern(l))
            .collect();

        for (rel, node) in &path.steps {
            let (dst_var, dst_prebound) = match &node.variable {
                Some(v) if self.is_bound(v) => (v.clone(), true),
                Some(v) => {
                    self.bind(v, VarKind::Node)?;
                    (v.clone(), false)
                }
                None => {
                    let v = self.fresh("v");
                    self.bind(&v, VarKind::Node)?;
                    (v, false)
                }
            };
            let _ = dst_prebound; // natural-join semantics close cycles
            for (k, e) in &node.props {
                preds.push(prop_eq(&dst_var, k, e));
            }

            let edge_var = match &rel.variable {
                Some(v) => v.clone(),
                None => self.fresh("e"),
            };
            let dst_labels: Vec<Symbol> = node.labels.iter().map(|l| Symbol::intern(l)).collect();
            let types: Vec<Symbol> = rel.types.iter().map(|t| Symbol::intern(t)).collect();

            match rel.range {
                None => {
                    // Single hop.
                    if let Some(v) = &rel.variable {
                        self.bind(v, VarKind::Rel)?;
                    } else {
                        self.bind(&edge_var, VarKind::Rel)?;
                    }
                    match_edges.push(edge_var.clone());
                    for (k, e) in &rel.props {
                        preds.push(prop_eq(&edge_var, k, e));
                    }
                    let path_mode = match &named_path {
                        Some(t) => PathMode::Append(t.clone()),
                        None => PathMode::None,
                    };
                    cur = Gra::Expand {
                        input: Box::new(cur),
                        src: prev_var.clone(),
                        edge: edge_var,
                        dst: dst_var.clone(),
                        types,
                        src_labels: prev_labels.clone(),
                        dst_labels: dst_labels.clone(),
                        dir: rel.direction,
                        range: None,
                        path: path_mode,
                        edge_prop_filters: Vec::new(),
                        rel_alias: None,
                    };
                }
                Some(range) => {
                    // Variable-length: edge properties must be literals
                    // (checked per traversed edge inside the operator).
                    let mut edge_prop_filters = Vec::new();
                    for (k, e) in &rel.props {
                        match e {
                            Expr::Literal(v) => {
                                edge_prop_filters.push((Symbol::intern(k), v.clone()))
                            }
                            _ => {
                                return Err(AlgebraError::Unsupported(
                                    "non-literal edge property constraint on a \
                                     variable-length relationship"
                                        .into(),
                                ))
                            }
                        }
                    }
                    let rel_alias = match &rel.variable {
                        Some(v) => {
                            self.bind(v, VarKind::Value)?;
                            Some(v.clone())
                        }
                        None => None,
                    };
                    let path_mode = match &named_path {
                        Some(t) => PathMode::Concat {
                            segment: self.fresh("p"),
                            into: t.clone(),
                        },
                        None => PathMode::Emit(self.fresh("p")),
                    };
                    cur = Gra::Expand {
                        input: Box::new(cur),
                        src: prev_var.clone(),
                        edge: self.fresh("e"),
                        dst: dst_var.clone(),
                        types,
                        src_labels: prev_labels.clone(),
                        dst_labels: dst_labels.clone(),
                        dir: rel.direction,
                        range: Some(VarLen {
                            min: range.min,
                            max: range.max,
                        }),
                        path: path_mode,
                        edge_prop_filters,
                        rel_alias,
                    };
                }
            }
            prev_var = dst_var;
            prev_labels = dst_labels;
        }
        Ok(cur)
    }

    /// Compile a `WITH` clause (extension beyond the paper's fragment):
    /// project or aggregate the accumulated bindings, narrow the variable
    /// scope to the projected names, and apply the optional post-WHERE
    /// (the HAVING pattern).
    fn compile_with(
        &mut self,
        acc: Gra,
        body: &ReturnClause,
        where_clause: Option<&Expr>,
    ) -> Result<Gra, AlgebraError> {
        if !body.order_by.is_empty() || body.skip.is_some() || body.limit.is_some() {
            return Err(AlgebraError::NotMaintainable(
                "ORDER BY / SKIP / LIMIT in WITH requires maintained ordering".into(),
            ));
        }
        // Kind of each projected item, under the *current* scope.
        let mut new_kinds: HashMap<String, VarKind> = HashMap::new();
        for item in &body.items {
            let name = item.name();
            let kind = match &item.expr {
                Expr::Variable(v) => *self
                    .kinds
                    .get(v)
                    .ok_or_else(|| AlgebraError::UnknownVariable(v.clone()))?,
                _ => VarKind::Value,
            };
            if new_kinds.insert(name.clone(), kind).is_some() {
                return Err(AlgebraError::InvalidQuery(format!(
                    "duplicate column `{name}` in WITH"
                )));
            }
            self.all_kinds.insert(item.name(), kind);
        }
        let mut out = match split_aggregates(body)? {
            Some((group, aggs)) => {
                let agg = Gra::Aggregate {
                    input: Box::new(acc),
                    group: group.clone(),
                    aggs: aggs.clone(),
                };
                let agg_schema: Vec<String> = group
                    .iter()
                    .map(|(_, n)| n.clone())
                    .chain(aggs.iter().map(|(_, n)| n.clone()))
                    .collect();
                let names: Vec<String> = body.items.iter().map(|i| i.name()).collect();
                if agg_schema == names {
                    agg
                } else {
                    Gra::Project {
                        input: Box::new(agg),
                        items: names
                            .iter()
                            .map(|n| (Expr::Variable(n.clone()), n.clone()))
                            .collect(),
                    }
                }
            }
            None => Gra::Project {
                input: Box::new(acc),
                items: body
                    .items
                    .iter()
                    .map(|i| (i.expr.clone(), i.name()))
                    .collect(),
            },
        };
        if body.distinct {
            out = Gra::Distinct {
                input: Box::new(out),
            };
        }
        // Scope narrows to the projected names; dropped names are retired.
        for name in self.kinds.keys() {
            if !new_kinds.contains_key(name) {
                self.retired.insert(name.clone());
            }
        }
        self.kinds = new_kinds;
        if let Some(w) = where_clause {
            // Post-WITH predicates reference projected columns only;
            // label predicates and exists() still work on projected
            // node variables.
            for conj in conjuncts(w) {
                match conj {
                    Expr::PatternPredicate(p) => {
                        let sub = self.compile_subpattern(p)?;
                        out = Gra::SemiJoin {
                            left: Box::new(out),
                            right: Box::new(sub),
                            anti: false,
                        };
                    }
                    Expr::Unary(pgq_parser::ast::UnOp::Not, inner)
                        if matches!(inner.as_ref(), Expr::PatternPredicate(_)) =>
                    {
                        let Expr::PatternPredicate(p) = inner.as_ref() else {
                            unreachable!()
                        };
                        let sub = self.compile_subpattern(p)?;
                        out = Gra::SemiJoin {
                            left: Box::new(out),
                            right: Box::new(sub),
                            anti: true,
                        };
                    }
                    other => {
                        out = Gra::Select {
                            input: Box::new(out),
                            predicate: other.clone(),
                        };
                    }
                }
            }
        }
        Ok(out)
    }

    /// Compile the pattern inside `[NOT] exists(...)` into a standalone
    /// subplan. Variables shared with the enclosing query become the
    /// correlation (join) variables; fresh variables stay existential.
    /// Property values inside the subpattern must be literals.
    fn compile_subpattern(&mut self, p: &PathPattern) -> Result<Gra, AlgebraError> {
        if p.variable.is_some() {
            return Err(AlgebraError::Unsupported(
                "named path inside exists(...)".into(),
            ));
        }
        for (_, e) in p.start.props.iter().chain(
            p.steps
                .iter()
                .flat_map(|(r, n)| r.props.iter().chain(n.props.iter())),
        ) {
            if !matches!(e, Expr::Literal(_)) {
                return Err(AlgebraError::Unsupported(
                    "non-literal property value inside exists(...)".into(),
                ));
            }
        }
        let mut preds: Vec<Expr> = Vec::new();
        let mut sub_edges: Vec<String> = Vec::new();
        // Force a © scan for the start variable even when it is bound
        // outside, so the subplan is self-contained and correlates via a
        // natural semijoin on the shared name.
        let start_var = match &p.start.variable {
            Some(v) => {
                if !self.is_bound(v) {
                    self.bind(v, VarKind::Node)?;
                }
                v.clone()
            }
            None => {
                let v = self.fresh("v");
                self.bind(&v, VarKind::Node)?;
                v
            }
        };
        for (k, e) in &p.start.props {
            preds.push(prop_eq(&start_var, k, e));
        }
        let base = Gra::GetVertices {
            var: start_var.clone(),
            labels: p.start.labels.iter().map(|l| Symbol::intern(l)).collect(),
        };
        let shim = PathPattern {
            variable: None,
            start: NodePattern {
                variable: Some(start_var),
                labels: Vec::new(), // labels handled by `base`
                props: Vec::new(),  // props handled above
            },
            steps: p.steps.clone(),
        };
        let mut sub = self.compile_path(base, &shim, &mut sub_edges, &mut preds)?;
        for i in 0..sub_edges.len() {
            for j in (i + 1)..sub_edges.len() {
                preds.push(Expr::Binary(
                    pgq_parser::ast::BinOp::Neq,
                    Box::new(Expr::Variable(sub_edges[i].clone())),
                    Box::new(Expr::Variable(sub_edges[j].clone())),
                ));
            }
        }
        if let Some(pred) = conjoin(preds) {
            sub = Gra::Select {
                input: Box::new(sub),
                predicate: pred,
            };
        }
        Ok(sub)
    }

    /// Handle the first node of a path: returns its variable and the ©
    /// scan to join in (if any).
    fn node_part(
        &mut self,
        node: &NodePattern,
        preds: &mut Vec<Expr>,
    ) -> Result<(String, Option<Gra>), AlgebraError> {
        let var = match &node.variable {
            Some(v) => v.clone(),
            None => self.fresh("v"),
        };
        let labels: Vec<Symbol> = node.labels.iter().map(|l| Symbol::intern(l)).collect();
        for (k, e) in &node.props {
            preds.push(prop_eq(&var, k, e));
        }
        let scan = if self.is_bound(&var) {
            if matches!(self.kinds.get(&var), Some(k) if *k != VarKind::Node) {
                return Err(AlgebraError::InvalidQuery(format!(
                    "variable `{var}` used in a node pattern is not a node"
                )));
            }
            if labels.is_empty() {
                None
            } else {
                Some(Gra::GetVertices {
                    var: var.clone(),
                    labels,
                })
            }
        } else {
            self.bind(&var, VarKind::Node)?;
            Some(Gra::GetVertices {
                var: var.clone(),
                labels,
            })
        };
        Ok((var, scan))
    }
}

fn join(left: Gra, right: Gra) -> Gra {
    if left == Gra::Unit {
        return right;
    }
    Gra::Join {
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn prop_eq(var: &str, key: &str, value: &Expr) -> Expr {
    Expr::Binary(
        pgq_parser::ast::BinOp::Eq,
        Box::new(Expr::Property(
            Box::new(Expr::Variable(var.to_string())),
            key.to_string(),
        )),
        Box::new(value.clone()),
    )
}

/// Split a predicate into top-level AND conjuncts.
pub fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary(pgq_parser::ast::BinOp::And, l, r) => {
            let mut out = conjuncts(l);
            out.extend(conjuncts(r));
            out
        }
        other => vec![other],
    }
}

/// Conjoin predicates back into one expression.
pub fn conjoin(preds: Vec<Expr>) -> Option<Expr> {
    preds
        .into_iter()
        .reduce(|a, b| Expr::Binary(pgq_parser::ast::BinOp::And, Box::new(a), Box::new(b)))
}

/// Infer what an `UNWIND` alias denotes from its source expression.
fn unwind_kind(expr: &Expr) -> VarKind {
    match expr {
        Expr::Function { name, .. } if name == "nodes" => VarKind::Node,
        Expr::Function { name, .. } if name == "relationships" => VarKind::Rel,
        _ => VarKind::Value,
    }
}

/// Split RETURN items into (group items, aggregate items) when the clause
/// aggregates; `None` when it is a plain projection.
#[allow(clippy::type_complexity)]
pub fn split_aggregates(
    ret: &ReturnClause,
) -> Result<Option<(Vec<(Expr, String)>, Vec<(Expr, String)>)>, AlgebraError> {
    if !ret.items.iter().any(|i| i.expr.contains_aggregate()) {
        return Ok(None);
    }
    let mut group = Vec::new();
    let mut aggs = Vec::new();
    for item in &ret.items {
        let name = item.name();
        if item.expr.is_aggregate() {
            aggs.push((item.expr.clone(), name));
        } else if item.expr.contains_aggregate() {
            return Err(AlgebraError::Unsupported(
                "expressions mixing aggregates with other terms \
                 (e.g. `count(*) + 1`); project the aggregate alone"
                    .into(),
            ));
        } else {
            group.push((item.expr.clone(), name));
        }
    }
    Ok(Some((group, aggs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_parser::parse_query;

    fn compile(src: &str) -> ReadPlan {
        let q = parse_query(src).unwrap();
        Compiler::default().compile_reading(&q).unwrap()
    }

    #[test]
    fn running_example_shape() {
        let plan =
            compile("MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t");
        // σ on top, then the transitive expand, path start, and ©.
        let Gra::Select { input, .. } = &plan.body else {
            panic!("expected Select at top, got {:?}", plan.body)
        };
        let Gra::Expand {
            input, range, path, ..
        } = input.as_ref()
        else {
            panic!("expected Expand")
        };
        assert!(range.is_some());
        assert!(matches!(path, PathMode::Concat { .. }));
        let Gra::PathStart { input, .. } = input.as_ref() else {
            panic!("expected PathStart")
        };
        assert!(matches!(input.as_ref(), Gra::GetVertices { .. }));
        assert_eq!(plan.kinds.get("t"), Some(&VarKind::Path));
        assert_eq!(plan.kinds.get("p"), Some(&VarKind::Node));
    }

    #[test]
    fn inline_props_become_selections() {
        let plan = compile("MATCH (p:Post {lang: 'en'}) RETURN p");
        let Gra::Select { predicate, .. } = &plan.body else {
            panic!("expected Select")
        };
        assert!(predicate.to_string().contains("p.lang"));
    }

    #[test]
    fn edge_uniqueness_filters_added() {
        let plan = compile("MATCH (a)-[e1:R]->(b)-[e2:R]->(c) RETURN a");
        let Gra::Select { predicate, .. } = &plan.body else {
            panic!("expected uniqueness Select, got {:?}", plan.body)
        };
        assert!(predicate.to_string().contains("<>"));
    }

    #[test]
    fn label_predicate_in_where_becomes_join() {
        let plan = compile("MATCH (n) WHERE n:Post RETURN n");
        assert!(matches!(plan.body, Gra::Join { .. }));
    }

    #[test]
    fn optional_match_rejected() {
        let q = parse_query("MATCH (a) OPTIONAL MATCH (a)-[:R]->(b) RETURN a, b").unwrap();
        let err = Compiler::default().compile_reading(&q).unwrap_err();
        assert!(matches!(err, AlgebraError::Unsupported(_)));
    }

    #[test]
    fn with_narrows_scope_and_projects() {
        let plan = compile("MATCH (a:Post) WITH a AS x RETURN x");
        // The body ends in the WITH projection; `a` is retired, `x` live.
        assert!(plan.kinds.contains_key("x"));
        assert!(matches!(plan.body, Gra::Project { .. }));
    }

    #[test]
    fn rebinding_as_other_kind_rejected() {
        let q = parse_query("MATCH (a)-[r:R]->(b) MATCH (r) RETURN r").unwrap();
        let err = Compiler::default().compile_reading(&q).unwrap_err();
        assert!(matches!(err, AlgebraError::InvalidQuery(_)));
    }

    #[test]
    fn nonliteral_varlen_edge_prop_rejected() {
        let q = parse_query("MATCH (a)-[:R* {w: a.x}]->(b) RETURN b").unwrap();
        let err = Compiler::default().compile_reading(&q).unwrap_err();
        assert!(matches!(err, AlgebraError::Unsupported(_)));
    }

    #[test]
    fn named_varlen_rel_binds_list() {
        let plan = compile("MATCH (a)-[es:R*]->(b) RETURN es");
        let vars = plan.body.bound_vars();
        assert!(vars.contains(&"es".to_string()));
        assert_eq!(plan.kinds.get("es"), Some(&VarKind::Value));
    }

    #[test]
    fn aggregate_split() {
        let q = parse_query("MATCH (n:Post) RETURN n.lang AS l, count(*) AS c").unwrap();
        let ret = q.return_clause().unwrap();
        let (group, aggs) = split_aggregates(ret).unwrap().unwrap();
        assert_eq!(group.len(), 1);
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn mixed_aggregate_expression_rejected() {
        let q = parse_query("MATCH (n) RETURN count(*) + 1").unwrap();
        let ret = q.return_clause().unwrap();
        assert!(split_aggregates(ret).is_err());
    }
}
