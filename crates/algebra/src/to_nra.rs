//! Step 2 of the paper's workflow: transform GRA to NRA.
//!
//! Two rewrites happen here:
//!
//! 1. Every expand-out ↑ is replaced by a natural join with the nullary
//!    get-edges operator ⇑ (`↑(w:W)(v)[:E](r) ≡ r ⋈ ⇑(v:V)[w:W](:E)`), and
//!    every transitive expand ↑* by a transitive join `⋈*` — because
//!    expand operators cannot be maintained incrementally, while joins
//!    can.
//! 2. Every property access `var.prop` inside σ/π/γ/ω expressions becomes
//!    an explicit attribute-unnest `µ var.prop → ⟨var.prop⟩`, giving the
//!    next stage (schema inference) an explicit inventory of the
//!    attributes each operator needs.

use std::collections::{HashMap, HashSet};

use pgq_common::intern::Symbol;
use pgq_parser::ast::Expr;

use crate::error::AlgebraError;
use crate::gra::{Gra, PathMode, VarKind};
use crate::nra::{GetEdges, Nra};

/// Column name generated for the unnested property `var.prop`.
pub fn prop_col(var: &str, prop: &str) -> String {
    format!("{var}.{prop}")
}

/// Convert a GRA tree to NRA.
pub fn to_nra(gra: &Gra, kinds: &HashMap<String, VarKind>) -> Result<Nra, AlgebraError> {
    let mut cx = Cx {
        kinds,
        unnested: HashSet::new(),
    };
    cx.convert(gra)
}

struct Cx<'a> {
    kinds: &'a HashMap<String, VarKind>,
    /// `(var, prop)` pairs already unnested somewhere below the current
    /// spine position — unnesting is idempotent, so each pair appears
    /// exactly once in the tree.
    unnested: HashSet<(String, String)>,
}

impl Cx<'_> {
    fn convert(&mut self, gra: &Gra) -> Result<Nra, AlgebraError> {
        Ok(match gra {
            Gra::Unit => Nra::Unit,
            Gra::GetVertices { var, labels } => Nra::GetVertices {
                var: var.clone(),
                labels: labels.clone(),
            },
            Gra::PathStart { input, node, path } => Nra::PathStart {
                input: Box::new(self.convert(input)?),
                node: node.clone(),
                path: path.clone(),
            },
            Gra::Expand {
                input,
                src,
                edge,
                dst,
                types,
                src_labels,
                dst_labels,
                dir,
                range,
                path,
                edge_prop_filters,
                rel_alias,
            } => {
                let left = self.convert(input)?;
                let ge = GetEdges {
                    src: src.clone(),
                    edge: edge.clone(),
                    dst: dst.clone(),
                    types: types.clone(),
                    src_labels: src_labels.clone(),
                    dst_labels: dst_labels.clone(),
                    dir: *dir,
                    edge_prop_filters: edge_prop_filters.clone(),
                };
                match range {
                    None => Nra::NaturalJoin {
                        left: Box::new(left),
                        right: Box::new(Nra::GetEdges(ge)),
                        path_append: match path {
                            PathMode::Append(t) => Some((t.clone(), edge.clone(), dst.clone())),
                            PathMode::None => None,
                            other => {
                                return Err(AlgebraError::InvalidQuery(format!(
                                    "single-hop expand with path mode {other:?}"
                                )))
                            }
                        },
                    },
                    Some(r) => {
                        let (path_col, concat_into) = match path {
                            PathMode::Emit(p) => (p.clone(), None),
                            PathMode::Concat { segment, into } => {
                                (segment.clone(), Some(into.clone()))
                            }
                            other => {
                                return Err(AlgebraError::InvalidQuery(format!(
                                    "variable-length expand with path mode {other:?}"
                                )))
                            }
                        };
                        Nra::TransitiveJoin {
                            left: Box::new(left),
                            edges: ge,
                            src: src.clone(),
                            range: *r,
                            path_col,
                            concat_into,
                            rel_alias: rel_alias.clone(),
                        }
                    }
                }
            }
            Gra::SemiJoin { left, right, anti } => {
                let l = self.convert(left)?;
                // The existential branch gets its own unnest scope: its
                // attribute accesses must be satisfied by its own scans,
                // not deduplicated against the outer plan's.
                let mut sub = Cx {
                    kinds: self.kinds,
                    unnested: HashSet::new(),
                };
                let r = sub.convert(right)?;
                Nra::SemiJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    anti: *anti,
                }
            }
            Gra::Join { left, right } => Nra::NaturalJoin {
                left: Box::new(self.convert(left)?),
                right: Box::new(self.convert(right)?),
                path_append: None,
            },
            Gra::Select { input, predicate } => {
                let inner = self.convert(input)?;
                let (pred, unnests) = self.rewrite(predicate)?;
                Nra::Select {
                    input: Box::new(self.wrap(inner, unnests)),
                    predicate: pred,
                }
            }
            Gra::Project { input, items } => {
                let inner = self.convert(input)?;
                let mut unnests = Vec::new();
                let mut out = Vec::with_capacity(items.len());
                for (e, name) in items {
                    let (e2, mut u) = self.rewrite(e)?;
                    unnests.append(&mut u);
                    out.push((e2, name.clone()));
                }
                Nra::Project {
                    input: Box::new(self.wrap(inner, unnests)),
                    items: out,
                }
            }
            Gra::Distinct { input } => Nra::Distinct {
                input: Box::new(self.convert(input)?),
            },
            Gra::Aggregate { input, group, aggs } => {
                let inner = self.convert(input)?;
                let mut unnests = Vec::new();
                let mut g = Vec::with_capacity(group.len());
                for (e, name) in group {
                    let (e2, mut u) = self.rewrite(e)?;
                    unnests.append(&mut u);
                    g.push((e2, name.clone()));
                }
                let mut a = Vec::with_capacity(aggs.len());
                for (e, name) in aggs {
                    let (e2, mut u) = self.rewrite(e)?;
                    unnests.append(&mut u);
                    a.push((e2, name.clone()));
                }
                Nra::Aggregate {
                    input: Box::new(self.wrap(inner, unnests)),
                    group: g,
                    aggs: a,
                }
            }
            Gra::Unwind { input, expr, alias } => {
                let inner = self.convert(input)?;
                let (e2, unnests) = self.rewrite(expr)?;
                Nra::Unwind {
                    input: Box::new(self.wrap(inner, unnests)),
                    expr: e2,
                    alias: alias.clone(),
                }
            }
        })
    }

    fn wrap(&mut self, mut input: Nra, unnests: Vec<(String, String)>) -> Nra {
        for (var, prop) in unnests {
            if self.unnested.insert((var.clone(), prop.clone())) {
                input = Nra::Unnest {
                    input: Box::new(input),
                    col: prop_col(&var, &prop),
                    prop: Symbol::intern(&prop),
                    var,
                };
            }
        }
        input
    }

    /// Replace `var.prop` (on node/rel variables) with the column
    /// reference `⟨var.prop⟩`; collect the required unnests.
    #[allow(clippy::type_complexity)]
    fn rewrite(&self, e: &Expr) -> Result<(Expr, Vec<(String, String)>), AlgebraError> {
        let mut unnests = Vec::new();
        let out = self.rewrite_inner(e, &mut unnests)?;
        Ok((out, unnests))
    }

    fn rewrite_inner(
        &self,
        e: &Expr,
        unnests: &mut Vec<(String, String)>,
    ) -> Result<Expr, AlgebraError> {
        Ok(match e {
            Expr::Property(base, key) => match base.as_ref() {
                Expr::Variable(v) => match self.kinds.get(v) {
                    Some(VarKind::Node) | Some(VarKind::Rel) => {
                        unnests.push((v.clone(), key.clone()));
                        Expr::Variable(prop_col(v, key))
                    }
                    Some(VarKind::Path) => {
                        return Err(AlgebraError::InvalidQuery(format!(
                            "property access `{v}.{key}` on a path variable"
                        )))
                    }
                    Some(VarKind::Value) => {
                        // Map-valued variable: keep as runtime map access.
                        Expr::Property(base.clone(), key.clone())
                    }
                    None => return Err(AlgebraError::UnknownVariable(v.clone())),
                },
                _ => {
                    let inner = self.rewrite_inner(base, unnests)?;
                    Expr::Property(Box::new(inner), key.clone())
                }
            },
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(self.rewrite_inner(l, unnests)?),
                Box::new(self.rewrite_inner(r, unnests)?),
            ),
            Expr::Unary(op, x) => Expr::Unary(*op, Box::new(self.rewrite_inner(x, unnests)?)),
            Expr::Function {
                name,
                distinct,
                args,
            } => Expr::Function {
                name: name.clone(),
                distinct: *distinct,
                args: args
                    .iter()
                    .map(|a| self.rewrite_inner(a, unnests))
                    .collect::<Result<_, _>>()?,
            },
            Expr::List(items) => Expr::List(
                items
                    .iter()
                    .map(|a| self.rewrite_inner(a, unnests))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Map(entries) => Expr::Map(
                entries
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), self.rewrite_inner(v, unnests)?)))
                    .collect::<Result<_, AlgebraError>>()?,
            ),
            Expr::Index(b, i) => Expr::Index(
                Box::new(self.rewrite_inner(b, unnests)?),
                Box::new(self.rewrite_inner(i, unnests)?),
            ),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.rewrite_inner(expr, unnests)?),
                negated: *negated,
            },
            Expr::HasLabel(..) => {
                return Err(AlgebraError::NotMaintainable(
                    "label predicate nested inside an expression; only top-level \
                     WHERE conjuncts of the form `var:Label` are supported"
                        .into(),
                ))
            }
            Expr::Parameter(p) => {
                return Err(AlgebraError::Unsupported(format!(
                    "query parameter ${p} (parameterised views are not implemented)"
                )))
            }
            Expr::PatternPredicate(_) => {
                return Err(AlgebraError::NotMaintainable(
                    "exists(pattern) nested inside an expression; only top-level \
                     WHERE conjuncts of the form `[NOT] exists(...)` are supported"
                        .into(),
                ))
            }
            Expr::Literal(_) | Expr::Variable(_) | Expr::CountStar => e.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiler;
    use pgq_parser::parse_query;

    fn nra_of(src: &str) -> Nra {
        let q = parse_query(src).unwrap();
        let mut c = Compiler::default();
        let plan = c.compile_reading(&q).unwrap();
        to_nra(&plan.body, &plan.kinds).unwrap()
    }

    #[test]
    fn expand_becomes_join_with_get_edges() {
        let n = nra_of("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p");
        let Nra::NaturalJoin { right, .. } = &n else {
            panic!("expected NaturalJoin at top, got {n:?}")
        };
        assert!(matches!(right.as_ref(), Nra::GetEdges(_)));
    }

    #[test]
    fn transitive_expand_becomes_transitive_join() {
        let n = nra_of("MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p");
        assert!(matches!(n, Nra::TransitiveJoin { .. }));
    }

    #[test]
    fn property_access_introduces_unnest_once() {
        let n = nra_of(
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang AND p.lang = 'en' RETURN p",
        );
        // Expect exactly two unnests (p.lang, c.lang) even though p.lang
        // is referenced twice.
        fn count_unnests(n: &Nra) -> usize {
            match n {
                Nra::Unnest { input, .. } => 1 + count_unnests(input),
                Nra::Select { input, .. }
                | Nra::Distinct { input }
                | Nra::Project { input, .. }
                | Nra::Aggregate { input, .. }
                | Nra::Unwind { input, .. }
                | Nra::PathStart { input, .. } => count_unnests(input),
                Nra::NaturalJoin { left, right, .. } => count_unnests(left) + count_unnests(right),
                Nra::TransitiveJoin { left, .. } => count_unnests(left),
                _ => 0,
            }
        }
        assert_eq!(count_unnests(&n), 2);
    }

    #[test]
    fn path_property_access_rejected() {
        let q = parse_query("MATCH t = (a)-[:R*]->(b) WHERE t.x = 1 RETURN t").unwrap();
        let mut c = Compiler::default();
        let err = c
            .compile_reading(&q)
            .and_then(|p| to_nra(&p.body, &p.kinds))
            .unwrap_err();
        assert!(matches!(err, AlgebraError::InvalidQuery(_)));
    }

    #[test]
    fn parameters_rejected() {
        let q = parse_query("MATCH (n) WHERE n.lang = $lang RETURN n").unwrap();
        let mut c = Compiler::default();
        let err = c
            .compile_reading(&q)
            .and_then(|p| to_nra(&p.body, &p.kinds))
            .unwrap_err();
        assert!(matches!(err, AlgebraError::Unsupported(_)));
    }
}
