//! Column-resolved scalar expressions — the expression language of FRA.
//!
//! After the paper's step 3 (schema inference + property push-down), every
//! property access in a query has been replaced by a *column reference*
//! into the operator's inferred schema. A [`ScalarExpr`] therefore
//! evaluates over a [`Tuple`] alone, with **no access to the graph** —
//! which is precisely what makes operators incrementally maintainable:
//! they are pure functions of their input tuples.
//!
//! Evaluation follows Cypher's three-valued logic: comparisons involving
//! `null` (or incomparable types) yield `null`; boolean connectives use
//! Kleene logic; a filter keeps only tuples whose predicate is `true`.

use pgq_common::error::CommonError;
use pgq_common::path::PathValue;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_parser::ast::{BinOp, UnOp};

/// A scalar expression over a fixed-width tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// Column reference (position in the input schema).
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Binary operation (shares the parser's operator vocabulary).
    Binary(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Unary operation.
    Unary(UnOp, Box<ScalarExpr>),
    /// Built-in function call.
    Func {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<ScalarExpr>,
    },
    /// `IS NULL` / `IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// List construction.
    List(Vec<ScalarExpr>),
    /// Map construction.
    Map(Vec<(String, ScalarExpr)>),
    /// Subscript.
    Index(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Internal: zero-length path anchored at a node column.
    PathSingle(Box<ScalarExpr>),
    /// Internal: extend a path by one hop (path, edge, node).
    PathExtend(Box<ScalarExpr>, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Internal: concatenate two paths sharing a seam vertex.
    PathConcat(Box<ScalarExpr>, Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Shorthand for a column reference.
    pub fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Col(i)
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Lit(v.into())
    }

    /// Evaluate against `tuple`.
    ///
    /// Comparison and logic never error (they produce `null` per Cypher
    /// 3VL); arithmetic and function type mismatches do.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, CommonError> {
        match self {
            ScalarExpr::Col(i) => Ok(tuple.get(*i).clone()),
            ScalarExpr::Lit(v) => Ok(v.clone()),
            ScalarExpr::Binary(op, l, r) => eval_binary(*op, l, r, tuple),
            ScalarExpr::Unary(UnOp::Not, e) => Ok(not3(truth(&e.eval(tuple)?))),
            ScalarExpr::Unary(UnOp::Neg, e) => e.eval(tuple)?.neg(),
            ScalarExpr::Func { name, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(tuple))
                    .collect::<Result<_, _>>()?;
                call_function(name, &vals)
            }
            ScalarExpr::IsNull { expr, negated } => {
                let isnull = expr.eval(tuple)?.is_null();
                Ok(Value::Bool(isnull != *negated))
            }
            ScalarExpr::List(items) => Ok(Value::list(
                items
                    .iter()
                    .map(|e| e.eval(tuple))
                    .collect::<Result<_, _>>()?,
            )),
            ScalarExpr::Map(entries) => {
                let mut m = Vec::with_capacity(entries.len());
                for (k, e) in entries {
                    m.push((k.clone(), e.eval(tuple)?));
                }
                Ok(Value::map(m))
            }
            ScalarExpr::Index(b, i) => {
                let base = b.eval(tuple)?;
                let idx = i.eval(tuple)?;
                index_value(&base, &idx)
            }
            ScalarExpr::PathSingle(n) => match n.eval(tuple)? {
                Value::Node(v) => Ok(Value::path(PathValue::single(v))),
                Value::Null => Ok(Value::Null),
                other => Err(type_err("path start", &other)),
            },
            ScalarExpr::PathExtend(p, e, n) => {
                match (p.eval(tuple)?, e.eval(tuple)?, n.eval(tuple)?) {
                    (Value::Path(path), Value::Rel(edge), Value::Node(node)) => {
                        Ok(Value::path(path.extend(edge, node)))
                    }
                    (Value::Null, _, _) | (_, Value::Null, _) | (_, _, Value::Null) => {
                        Ok(Value::Null)
                    }
                    (p, _, _) => Err(type_err("path extension", &p)),
                }
            }
            ScalarExpr::PathConcat(a, b) => match (a.eval(tuple)?, b.eval(tuple)?) {
                (Value::Path(x), Value::Path(y)) => {
                    let seam = x.target() == y.source();
                    // Concatenating with a zero-length path is the common
                    // case (every `p = (a)-[*]->(b)` plan splices the
                    // anchor's ε-path in front of the traversal) — share
                    // the existing Arc instead of rebuilding the path.
                    if seam && x.is_empty() {
                        Ok(Value::Path(y))
                    } else if seam && y.is_empty() {
                        Ok(Value::Path(x))
                    } else {
                        x.concat(&y)
                            .map(Value::path)
                            .ok_or_else(|| CommonError::TypeMismatch {
                                operation: "path concatenation".into(),
                                detail: "paths do not share a seam vertex".into(),
                            })
                    }
                }
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (p, _) => Err(type_err("path concatenation", &p)),
            },
        }
    }

    /// Evaluate as a predicate: `true` keeps the tuple; `false`, `null`
    /// and evaluation errors drop it (errors additionally fire a debug
    /// assertion, since a well-typed compiled plan should not produce
    /// them).
    pub fn matches(&self, tuple: &Tuple) -> bool {
        match self.eval(tuple) {
            Ok(v) => truth(&v) == Some(true),
            Err(_e) => {
                debug_assert!(false, "predicate evaluation error: {_e}");
                false
            }
        }
    }

    /// All column indexes referenced.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Col(i) => out.push(*i),
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Binary(_, l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            ScalarExpr::Unary(_, e) => e.collect_columns(out),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            ScalarExpr::IsNull { expr, .. } => expr.collect_columns(out),
            ScalarExpr::List(items) => {
                for e in items {
                    e.collect_columns(out);
                }
            }
            ScalarExpr::Map(entries) => {
                for (_, e) in entries {
                    e.collect_columns(out);
                }
            }
            ScalarExpr::Index(b, i) => {
                b.collect_columns(out);
                i.collect_columns(out);
            }
            ScalarExpr::PathSingle(e) => e.collect_columns(out),
            ScalarExpr::PathExtend(a, b, c) => {
                a.collect_columns(out);
                b.collect_columns(out);
                c.collect_columns(out);
            }
            ScalarExpr::PathConcat(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }

    /// Replace every column reference with the corresponding projection
    /// expression (`Col(i)` ↦ `items[i].0`) — the substitution that
    /// moves a predicate or projection *through* a π operator. Exact
    /// because both π and the substituted expression are pure per-tuple
    /// functions.
    pub fn substitute(&self, items: &[(ScalarExpr, String)]) -> ScalarExpr {
        self.rewrite_columns(&|i| items[i].0.clone())
    }

    /// Rewrite column references through `mapping` (old index → new index).
    pub fn remap_columns(&self, mapping: &dyn Fn(usize) -> usize) -> ScalarExpr {
        self.rewrite_columns(&|i| ScalarExpr::Col(mapping(i)))
    }

    /// Structural rewrite replacing each `Col(i)` with `f(i)`.
    fn rewrite_columns(&self, f: &dyn Fn(usize) -> ScalarExpr) -> ScalarExpr {
        match self {
            ScalarExpr::Col(i) => f(*i),
            ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
            ScalarExpr::Binary(op, l, r) => ScalarExpr::Binary(
                *op,
                Box::new(l.rewrite_columns(f)),
                Box::new(r.rewrite_columns(f)),
            ),
            ScalarExpr::Unary(op, e) => ScalarExpr::Unary(*op, Box::new(e.rewrite_columns(f))),
            ScalarExpr::Func { name, args } => ScalarExpr::Func {
                name: name.clone(),
                args: args.iter().map(|a| a.rewrite_columns(f)).collect(),
            },
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.rewrite_columns(f)),
                negated: *negated,
            },
            ScalarExpr::List(items) => {
                ScalarExpr::List(items.iter().map(|e| e.rewrite_columns(f)).collect())
            }
            ScalarExpr::Map(entries) => ScalarExpr::Map(
                entries
                    .iter()
                    .map(|(k, e)| (k.clone(), e.rewrite_columns(f)))
                    .collect(),
            ),
            ScalarExpr::Index(b, i) => ScalarExpr::Index(
                Box::new(b.rewrite_columns(f)),
                Box::new(i.rewrite_columns(f)),
            ),
            ScalarExpr::PathSingle(e) => ScalarExpr::PathSingle(Box::new(e.rewrite_columns(f))),
            ScalarExpr::PathExtend(a, b, c) => ScalarExpr::PathExtend(
                Box::new(a.rewrite_columns(f)),
                Box::new(b.rewrite_columns(f)),
                Box::new(c.rewrite_columns(f)),
            ),
            ScalarExpr::PathConcat(a, b) => ScalarExpr::PathConcat(
                Box::new(a.rewrite_columns(f)),
                Box::new(b.rewrite_columns(f)),
            ),
        }
    }
}

fn type_err(op: &str, v: &Value) -> CommonError {
    CommonError::TypeMismatch {
        operation: op.into(),
        detail: v.type_name().into(),
    }
}

/// Kleene truth value of `v`: `Some(bool)` or `None` for null/non-boolean.
fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn not3(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Bool(!b),
        None => Value::Null,
    }
}

fn bool3(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn eval_binary(op: BinOp, l: &ScalarExpr, r: &ScalarExpr, t: &Tuple) -> Result<Value, CommonError> {
    use BinOp::*;
    // Short-circuiting Kleene logic for AND/OR.
    match op {
        And => {
            let lv = truth(&l.eval(t)?);
            if lv == Some(false) {
                return Ok(Value::Bool(false));
            }
            let rv = truth(&r.eval(t)?);
            return Ok(match (lv, rv) {
                (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            });
        }
        Or => {
            let lv = truth(&l.eval(t)?);
            if lv == Some(true) {
                return Ok(Value::Bool(true));
            }
            let rv = truth(&r.eval(t)?);
            return Ok(match (lv, rv) {
                (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            });
        }
        Xor => {
            let lv = truth(&l.eval(t)?);
            let rv = truth(&r.eval(t)?);
            return Ok(match (lv, rv) {
                (Some(a), Some(b)) => Value::Bool(a != b),
                _ => Value::Null,
            });
        }
        _ => {}
    }

    let lv = l.eval(t)?;
    let rv = r.eval(t)?;
    Ok(match op {
        Add => lv.add(&rv)?,
        Sub => lv.sub(&rv)?,
        Mul => lv.mul(&rv)?,
        Div => lv.div(&rv)?,
        Mod => lv.modulo(&rv)?,
        Pow => match (lv.as_f64(), rv.as_f64()) {
            (Some(a), Some(b)) => Value::float(a.powf(b)),
            _ if lv.is_null() || rv.is_null() => Value::Null,
            _ => {
                return Err(CommonError::TypeMismatch {
                    operation: "^".into(),
                    detail: format!("{} ^ {}", lv.type_name(), rv.type_name()),
                })
            }
        },
        Eq => bool3(lv.cypher_eq(&rv)),
        Neq => not3(lv.cypher_eq(&rv)),
        Lt => bool3(lv.compare(&rv).map(|o| o == std::cmp::Ordering::Less)),
        Le => bool3(lv.compare(&rv).map(|o| o != std::cmp::Ordering::Greater)),
        Gt => bool3(lv.compare(&rv).map(|o| o == std::cmp::Ordering::Greater)),
        Ge => bool3(lv.compare(&rv).map(|o| o != std::cmp::Ordering::Less)),
        In => match (&lv, &rv) {
            (_, Value::Null) | (Value::Null, _) => Value::Null,
            (x, Value::List(items)) => Value::Bool(items.iter().any(|i| i == x)),
            _ => {
                return Err(CommonError::TypeMismatch {
                    operation: "IN".into(),
                    detail: format!("{} IN {}", lv.type_name(), rv.type_name()),
                })
            }
        },
        StartsWith | EndsWith | Contains => match (&lv, &rv) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Str(a), Value::Str(b)) => Value::Bool(match op {
                StartsWith => a.starts_with(b.as_ref()),
                EndsWith => a.ends_with(b.as_ref()),
                _ => a.contains(b.as_ref()),
            }),
            _ => Value::Null,
        },
        And | Or | Xor => unreachable!("handled above"),
    })
}

fn index_value(base: &Value, idx: &Value) -> Result<Value, CommonError> {
    match (base, idx) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::List(items), Value::Int(i)) => {
            let len = items.len() as i64;
            let j = if *i < 0 { len + i } else { *i };
            if j < 0 || j >= len {
                Ok(Value::Null)
            } else {
                Ok(items[j as usize].clone())
            }
        }
        (Value::Map(m), Value::Str(k)) => Ok(m.get(k.as_ref()).cloned().unwrap_or(Value::Null)),
        _ => Err(CommonError::TypeMismatch {
            operation: "subscript".into(),
            detail: format!("{}[{}]", base.type_name(), idx.type_name()),
        }),
    }
}

/// Built-in scalar functions.
pub fn call_function(name: &str, args: &[Value]) -> Result<Value, CommonError> {
    let arity_err = || CommonError::TypeMismatch {
        operation: format!("{name}()"),
        detail: format!("wrong number of arguments ({})", args.len()),
    };
    match name {
        "id" => match args {
            [Value::Node(v)] => Ok(Value::Int(v.raw() as i64)),
            [Value::Rel(e)] => Ok(Value::Int(e.raw() as i64)),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("id()", v)),
            _ => Err(arity_err()),
        },
        "size" => match args {
            [Value::List(items)] => Ok(Value::Int(items.len() as i64)),
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Map(m)] => Ok(Value::Int(m.len() as i64)),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("size()", v)),
            _ => Err(arity_err()),
        },
        "length" => match args {
            [Value::Path(p)] => Ok(Value::Int(p.len() as i64)),
            [Value::List(items)] => Ok(Value::Int(items.len() as i64)),
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("length()", v)),
            _ => Err(arity_err()),
        },
        "nodes" => match args {
            [Value::Path(p)] => Ok(Value::list(
                p.vertices().iter().map(|&v| Value::Node(v)).collect(),
            )),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("nodes()", v)),
            _ => Err(arity_err()),
        },
        "relationships" => match args {
            [Value::Path(p)] => Ok(Value::list(
                p.edges().iter().map(|&e| Value::Rel(e)).collect(),
            )),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("relationships()", v)),
            _ => Err(arity_err()),
        },
        "head" => match args {
            [Value::List(items)] => Ok(items.first().cloned().unwrap_or(Value::Null)),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("head()", v)),
            _ => Err(arity_err()),
        },
        "last" => match args {
            [Value::List(items)] => Ok(items.last().cloned().unwrap_or(Value::Null)),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("last()", v)),
            _ => Err(arity_err()),
        },
        "abs" => match args {
            [Value::Int(i)] => Ok(Value::Int(
                i.checked_abs()
                    .ok_or(CommonError::ArithmeticOverflow("abs"))?,
            )),
            [Value::Float(f)] => Ok(Value::float(f.get().abs())),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("abs()", v)),
            _ => Err(arity_err()),
        },
        "sign" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.signum())),
            [Value::Float(f)] => Ok(Value::Int(if f.get() > 0.0 {
                1
            } else if f.get() < 0.0 {
                -1
            } else {
                0
            })),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("sign()", v)),
            _ => Err(arity_err()),
        },
        "toupper" => match args {
            [Value::Str(s)] => Ok(Value::str(s.to_uppercase())),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("toUpper()", v)),
            _ => Err(arity_err()),
        },
        "tolower" => match args {
            [Value::Str(s)] => Ok(Value::str(s.to_lowercase())),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("toLower()", v)),
            _ => Err(arity_err()),
        },
        "tostring" => match args {
            [Value::Null] => Ok(Value::Null),
            [Value::Str(s)] => Ok(Value::Str(s.clone())),
            [v] => Ok(Value::str(v.to_string())),
            _ => Err(arity_err()),
        },
        "coalesce" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        "exists" => match args {
            [v] => Ok(Value::Bool(!v.is_null())),
            _ => Err(arity_err()),
        },
        "startnode" => match args {
            [Value::Path(p)] => Ok(Value::Node(p.source())),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("startNode()", v)),
            _ => Err(arity_err()),
        },
        "endnode" => match args {
            [Value::Path(p)] => Ok(Value::Node(p.target())),
            [Value::Null] => Ok(Value::Null),
            [v] => Err(type_err("endNode()", v)),
            _ => Err(arity_err()),
        },
        other => Err(CommonError::TypeMismatch {
            operation: format!("{other}()"),
            detail: "unknown function".into(),
        }),
    }
}

/// Aggregate functions of the (paper-future-work) aggregation extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    CountStar,
    Sum,
    Min,
    Max,
    Avg,
    Collect,
}

impl AggFunc {
    /// Parse from a lower-cased function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            "collect" => AggFunc::Collect,
            _ => return None,
        })
    }
}

/// One aggregate call in an `Aggregate` operator.
#[derive(Clone, Debug, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument (absent for `count(*)`).
    pub arg: Option<ScalarExpr>,
    /// `DISTINCT` flag.
    pub distinct: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::ids::{EdgeId, VertexId};

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn column_and_literal() {
        let row = t(vec![Value::Int(7)]);
        assert_eq!(ScalarExpr::col(0).eval(&row).unwrap(), Value::Int(7));
        assert_eq!(ScalarExpr::lit(3).eval(&row).unwrap(), Value::Int(3));
    }

    #[test]
    fn kleene_logic() {
        let row = t(vec![]);
        let tru = ScalarExpr::lit(true);
        let fal = ScalarExpr::lit(false);
        let nul = ScalarExpr::Lit(Value::Null);
        let and = |a: &ScalarExpr, b: &ScalarExpr| {
            ScalarExpr::Binary(BinOp::And, Box::new(a.clone()), Box::new(b.clone()))
                .eval(&row)
                .unwrap()
        };
        let or = |a: &ScalarExpr, b: &ScalarExpr| {
            ScalarExpr::Binary(BinOp::Or, Box::new(a.clone()), Box::new(b.clone()))
                .eval(&row)
                .unwrap()
        };
        assert_eq!(and(&nul, &fal), Value::Bool(false));
        assert_eq!(and(&nul, &tru), Value::Null);
        assert_eq!(or(&nul, &tru), Value::Bool(true));
        assert_eq!(or(&nul, &fal), Value::Null);
        let not_null = ScalarExpr::Unary(UnOp::Not, Box::new(nul.clone()))
            .eval(&row)
            .unwrap();
        assert_eq!(not_null, Value::Null);
    }

    #[test]
    fn null_comparison_filters_out() {
        let row = t(vec![Value::Null, Value::Int(1)]);
        let pred = ScalarExpr::Binary(
            BinOp::Eq,
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::col(1)),
        );
        assert!(!pred.matches(&row));
    }

    #[test]
    fn path_builders() {
        let row = t(vec![
            Value::Node(VertexId(1)),
            Value::Rel(EdgeId(10)),
            Value::Node(VertexId(2)),
        ]);
        let p = ScalarExpr::PathExtend(
            Box::new(ScalarExpr::PathSingle(Box::new(ScalarExpr::col(0)))),
            Box::new(ScalarExpr::col(1)),
            Box::new(ScalarExpr::col(2)),
        );
        let v = p.eval(&row).unwrap();
        let path = v.as_path().unwrap();
        assert_eq!(path.len(), 1);
        assert_eq!(path.source(), VertexId(1));
        assert_eq!(path.target(), VertexId(2));
    }

    #[test]
    fn functions_on_paths() {
        let path = PathValue::single(VertexId(1)).extend(EdgeId(5), VertexId(2));
        let row = t(vec![Value::path(path)]);
        let nodes = ScalarExpr::Func {
            name: "nodes".into(),
            args: vec![ScalarExpr::col(0)],
        }
        .eval(&row)
        .unwrap();
        assert_eq!(
            nodes,
            Value::list(vec![Value::Node(VertexId(1)), Value::Node(VertexId(2))])
        );
        let len = ScalarExpr::Func {
            name: "length".into(),
            args: vec![ScalarExpr::col(0)],
        }
        .eval(&row)
        .unwrap();
        assert_eq!(len, Value::Int(1));
    }

    #[test]
    fn in_and_string_ops() {
        let row = t(vec![Value::str("en")]);
        let pred = ScalarExpr::Binary(
            BinOp::In,
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::List(vec![
                ScalarExpr::lit("de"),
                ScalarExpr::lit("en"),
            ])),
        );
        assert!(pred.matches(&row));
        let starts = ScalarExpr::Binary(
            BinOp::StartsWith,
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::lit("e")),
        );
        assert!(starts.matches(&row));
    }

    #[test]
    fn subscripts() {
        let row = t(vec![Value::list(vec![10.into(), 20.into()])]);
        let ix = |i: i64| {
            ScalarExpr::Index(Box::new(ScalarExpr::col(0)), Box::new(ScalarExpr::lit(i)))
                .eval(&row)
                .unwrap()
        };
        assert_eq!(ix(0), Value::Int(10));
        assert_eq!(ix(-1), Value::Int(20));
        assert_eq!(ix(5), Value::Null);
    }

    #[test]
    fn coalesce_and_exists() {
        assert_eq!(
            call_function("coalesce", &[Value::Null, Value::Int(2)]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            call_function("exists", &[Value::Null]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn remap_columns() {
        let e = ScalarExpr::Binary(
            BinOp::Add,
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::col(2)),
        );
        let remapped = e.remap_columns(&|i| i + 10);
        assert_eq!(remapped.columns(), vec![10, 12]);
    }

    #[test]
    fn unknown_function_errors() {
        assert!(call_function("frobnicate", &[]).is_err());
    }
}
