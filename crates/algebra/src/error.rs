//! Compilation errors, distinguishing "outside the fragment entirely"
//! from "evaluable, but not incrementally maintainable" — the distinction
//! the paper's research question is about.

use std::fmt;

/// Errors from the Cypher → GRA → NRA → FRA pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// The construct is outside the supported language fragment
    /// (OPTIONAL MATCH, WITH, parameters, ...). Neither engine can run it.
    Unsupported(String),
    /// The construct parses and the *baseline* evaluator can run it, but
    /// no incremental view can be maintained for it (ORDER BY / SKIP /
    /// LIMIT / top-k — exactly the trade-off of the paper's Section 4).
    NotMaintainable(String),
    /// A variable was referenced but never bound.
    UnknownVariable(String),
    /// The query is malformed at a semantic level (rebinding a variable
    /// to a different kind, property access on a path, ...).
    InvalidQuery(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
            AlgebraError::NotMaintainable(s) => {
                write!(f, "not incrementally maintainable: {s}")
            }
            AlgebraError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            AlgebraError::InvalidQuery(s) => write!(f, "invalid query: {s}"),
        }
    }
}

impl std::error::Error for AlgebraError {}
