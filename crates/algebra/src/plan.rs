//! Statistics-driven, cost-based join-order planning over FRA.
//!
//! The compiler ([`crate::pipeline`]) emits FRA in the *syntactic* order
//! the query was written in: a query that mentions a huge fan-out edge
//! type first pays for it in every join memory and on every
//! transaction. This module reorders the plan using a snapshot of live
//! graph statistics ([`PlanStats`], fed from `pgq_graph`'s cardinality
//! catalog) **before** canonicalisation, so that
//!
//! * equal inputs still produce equal shapes (planning is a
//!   deterministic function of the plan *structure* and the snapshot —
//!   variable names never influence a decision, so alpha-equivalent
//!   queries plan identically and hash-consing keeps sharing), and
//! * the canon machinery's column-bijection bookkeeping absorbs the
//!   planner's permutation for free: [`plan`] always returns a plan
//!   with the *same output schema* as its input (appending a restoring
//!   projection when the chosen order permutes columns — a projection
//!   canonicalisation later folds into its mapping).
//!
//! # What is planned
//!
//! A maximal *region* of reorderable operators is flattened at each
//! [`Fra::HashJoin`] / [`Fra::Filter`] / [`Fra::SemiJoin`] /
//! [`Fra::VarLengthJoin`] root into
//!
//! * **factors** — the non-join inputs (scans, or opaque subplans such
//!   as aggregates, each planned recursively),
//! * **join edges** — equi-join key pairs between factor columns,
//! * **appliers** — filter conjuncts and semijoin reductions, applied
//!   at the earliest point where their columns are available (which
//!   reproduces filter push-down inside the region), and
//! * **expansions** — variable-length joins, anchored at the factor
//!   providing their source column; the enumerator chooses *when* to
//!   expand (the ⋈* anchor-side decision).
//!
//! Orders are enumerated with exact dynamic programming over subsets
//! for at most [`MAX_DP_UNITS`] units and greedy minimum-cost-expansion
//! above, minimising total estimated intermediate cardinality — the
//! quantity that drives both join-memory size and per-transaction delta
//! fan-out in the IVM network.
//!
//! # Estimator
//!
//! [`estimate`] assigns every operator an expected output cardinality:
//! scans from label/type extents, filters from distinct-value
//! selectivities, joins from per-column distinct estimates (vertex
//! columns by label count, edge endpoints by the catalog's per-type
//! distinct source/target counts — i.e. real fan-out, not |V|), ⋈* from
//! per-type average degree raised to the hop range. The numbers are
//! coarse; only their *relative order* matters, and the estimator is
//! deliberately monotone in the catalog inputs so skew shows up.

use pgq_common::fxhash::FxHashMap;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_parser::ast::BinOp;

use crate::expr::ScalarExpr;
use crate::fra::{Fra, VarLenSpec};

/// Exact DP is run when a region has at most this many units (factors +
/// expansions); larger regions fall back to greedy ordering.
pub const MAX_DP_UNITS: usize = 8;

/// Per-tuple overhead multiplier of the n-ary leapfrog intersection
/// relative to a binary hash-join probe, applied to the level-walk cost
/// estimate before it is compared against the binary-tree cost. A
/// leapfrog level seeks every participating cursor (binary-search hops
/// through sorted runs) where a hash join pays one probe, so the fused
/// node has to win by at least this factor on raw tuple counts.
/// Calibrated against the certified motif suites: triangles
/// (n-ary/binary raw ratio ≈ 2.4–2.9 at measured scales) must fuse,
/// 4-cycles (ratio ≈ 4.8–7.1) must not — until skew says otherwise.
pub const WCOJ_OVERHEAD: f64 = 2.4;

/// Memory escape hatch: fuse regardless of time estimates when the
/// binary tree's resident intermediates exceed this multiple of the
/// fused node's input memories. The fused node stores only its inputs
/// (no wedges), so on blow-up-prone patterns memory becomes the binding
/// constraint long before time does.
pub const WCOJ_MEM_RATIO: f64 = 16.0;

/// Catalog threshold for the ⨝ⁿ *intersection backend* default: fused
/// nodes use the sorted-run sub-indexes (leapfrog with galloping seeks)
/// when [`PlanStats::out_degree_skew`] is at least this, and the
/// hash-bucket tries below it. Galloping pays on hub-skewed adjacency
/// (seeks are O(log degree) where hash probing is O(degree) per
/// intersection); on low-skew graphs the candidate lists are short and
/// the leapfrog cursor constant costs ~10% instead. Calibrated on the
/// certified workloads: the motif catalogs measure skew 4–13 (hash
/// tries win there), the two-hub catalogs clamp at 64 (sorted runs win
/// ≥ 2× at 10k-degree hubs).
pub const SORTED_BACKEND_MIN_SKEW: f64 = 24.0;

/// When does the planner fuse a *cyclic* join region into a single
/// worst-case optimal [`Fra::MultiwayJoin`]? Acyclic regions always
/// keep the binary path (the planner threshold): binary plans are
/// already worst-case optimal there, and the binary operators have the
/// leaner per-delta constant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WcojMode {
    /// Never fuse — every region plans as a binary join tree (the
    /// `PGQ_DISABLE_WCOJ` kill switch / `register_view_binary`).
    Disabled,
    /// Fuse an eligible cyclic region only when the estimated n-ary
    /// intersection cost beats the skew-adjusted binary-tree cost, or
    /// the binary tree's join memories dwarf the n-ary memories (the
    /// memory-binding escape hatch). Both estimates come from the
    /// statistics snapshot and are surfaced by `EXPLAIN` (see
    /// [`FuseDecision`]).
    #[default]
    CostBased,
    /// Fuse every eligible cyclic region unconditionally — the pre-gate
    /// behaviour, kept for benchmarks and tests that pin the fused
    /// operator regardless of what the catalog says.
    Forced,
}

/// Knobs for [`plan_with`]. The defaults match [`plan`].
#[derive(Clone, Debug, Default)]
pub struct PlanOptions {
    /// Fusion policy for cyclic join regions.
    pub wcoj: WcojMode,
}

/// A snapshot of graph statistics taken at view-registration time.
///
/// Filled from `pgq_graph`'s live cardinality catalog (label/type
/// extents, per-type distinct endpoints, distinct property values) by
/// the IVM layer. The snapshot is **not** refreshed afterwards: a plan
/// chosen at registration stays fixed even as the graph drifts (the
/// staleness contract documented in ARCHITECTURE.md — re-register a
/// view to replan).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanStats {
    /// Total vertices.
    pub vertices: u64,
    /// Total edges.
    pub edges: u64,
    /// Vertices per label.
    pub label_counts: FxHashMap<Symbol, u64>,
    /// Edges per type.
    pub type_counts: FxHashMap<Symbol, u64>,
    /// Distinct source vertices per edge type.
    pub type_distinct_src: FxHashMap<Symbol, u64>,
    /// Distinct target vertices per edge type.
    pub type_distinct_dst: FxHashMap<Symbol, u64>,
    /// Estimated distinct values per vertex property key.
    pub vertex_prop_distinct: FxHashMap<Symbol, u64>,
    /// Estimated distinct values per edge property key.
    pub edge_prop_distinct: FxHashMap<Symbol, u64>,
    /// Σ out-degree² over all vertices, from the catalog's dense
    /// out-degree histogram (0 = unknown). The second moment measures
    /// wedge blow-up: a binary join tree on a cyclic pattern
    /// materialises Θ(Σ deg²) wedges while the uniform-degree estimate
    /// assumes E²/sources.
    pub out_degree_sq_sum: u64,
    /// Vertices with at least one outgoing edge (0 = unknown).
    pub out_degree_sources: u64,
}

impl PlanStats {
    /// Cardinality of a conjunctive label set (|V| when empty).
    fn label_card(&self, labels: &[Symbol]) -> f64 {
        labels
            .iter()
            .map(|l| self.label_counts.get(l).copied().unwrap_or(0) as f64)
            .fold(self.vertices as f64, f64::min)
            .max(1.0)
    }

    /// Selectivity of requiring a label set on a vertex column.
    fn label_sel(&self, labels: &[Symbol]) -> f64 {
        if labels.is_empty() {
            return 1.0;
        }
        (self.label_card(labels) / (self.vertices as f64).max(1.0)).clamp(1e-9, 1.0)
    }

    /// Cardinality of a disjunctive edge-type set (|E| when empty).
    fn type_card(&self, types: &[Symbol]) -> f64 {
        if types.is_empty() {
            return (self.edges as f64).max(1.0);
        }
        types
            .iter()
            .map(|t| self.type_counts.get(t).copied().unwrap_or(0) as f64)
            .sum::<f64>()
            .max(1.0)
    }

    fn distinct_src(&self, types: &[Symbol]) -> f64 {
        if types.is_empty() {
            return (self.vertices as f64).max(1.0);
        }
        types
            .iter()
            .map(|t| self.type_distinct_src.get(t).copied().unwrap_or(0) as f64)
            .sum::<f64>()
            .max(1.0)
    }

    fn distinct_dst(&self, types: &[Symbol]) -> f64 {
        if types.is_empty() {
            return (self.vertices as f64).max(1.0);
        }
        types
            .iter()
            .map(|t| self.type_distinct_dst.get(t).copied().unwrap_or(0) as f64)
            .sum::<f64>()
            .max(1.0)
    }

    /// Out-degree skew: the measured second moment Σ deg² over the
    /// uniform-degree second moment E²/sources. 1.0 on regular graphs;
    /// grows with hub weight (a single d-degree hub among m edges
    /// contributes ≈ d²·sources/m²). Clamped — one extreme hub should
    /// decide the fuse gate, not drown every other term.
    pub fn out_degree_skew(&self) -> f64 {
        let e = self.edges as f64;
        if e < 1.0 || self.out_degree_sq_sum == 0 || self.out_degree_sources == 0 {
            return 1.0;
        }
        let uniform = e * e / self.out_degree_sources as f64;
        (self.out_degree_sq_sum as f64 / uniform.max(1.0)).clamp(1.0, 64.0)
    }

    /// Average per-source fan-out when traversing `types` in `dir`.
    fn fanout(&self, spec: &VarLenSpec) -> f64 {
        use pgq_common::dir::Direction;
        let card = self.type_card(&spec.types);
        match spec.dir {
            Direction::Out => card / self.distinct_src(&spec.types),
            Direction::In => card / self.distinct_dst(&spec.types),
            Direction::Both => {
                2.0 * card / (self.distinct_src(&spec.types) + self.distinct_dst(&spec.types))
            }
        }
        .max(0.01)
    }
}

/// Provenance of one output column, used to estimate its distinct count.
#[derive(Clone, Debug)]
enum ColInfo {
    /// A vertex reference constrained to `labels`.
    Vertex { labels: Vec<Symbol> },
    /// An edge reference (unique per scanned edge).
    EdgeId,
    /// The source endpoint of an edge scan.
    Src {
        types: Vec<Symbol>,
        labels: Vec<Symbol>,
    },
    /// The target endpoint of an edge scan.
    Dst {
        types: Vec<Symbol>,
        labels: Vec<Symbol>,
    },
    /// A pushed property value.
    Prop { key: Symbol, on_vertex: bool },
    /// Anything else (computed expressions, paths, maps).
    Other,
}

impl ColInfo {
    /// Estimated distinct values of this column in a relation of `card`
    /// rows.
    fn distinct(&self, card: f64, stats: &PlanStats) -> f64 {
        let raw = match self {
            ColInfo::Vertex { labels } => stats.label_card(labels),
            ColInfo::EdgeId => card,
            ColInfo::Src { types, labels } => {
                stats.distinct_src(types).min(stats.label_card(labels))
            }
            ColInfo::Dst { types, labels } => {
                stats.distinct_dst(types).min(stats.label_card(labels))
            }
            ColInfo::Prop { key, on_vertex } => {
                let d = if *on_vertex {
                    stats.vertex_prop_distinct.get(key).copied().unwrap_or(0)
                } else {
                    stats.edge_prop_distinct.get(key).copied().unwrap_or(0)
                } as f64;
                if d >= 1.0 {
                    d
                } else {
                    card.sqrt()
                }
            }
            ColInfo::Other => card.sqrt(),
        };
        raw.clamp(1.0, card.max(1.0))
    }
}

/// Cardinality + per-column provenance of a subplan.
#[derive(Clone, Debug)]
struct Rel {
    card: f64,
    cols: Vec<ColInfo>,
}

/// Estimated output cardinality of `fra` under `stats`.
pub fn estimate(fra: &Fra, stats: &PlanStats) -> f64 {
    analyze(fra, stats).card
}

fn analyze(fra: &Fra, stats: &PlanStats) -> Rel {
    match fra {
        Fra::Unit => Rel {
            card: 1.0,
            cols: vec![],
        },
        Fra::ScanVertices {
            labels,
            props,
            carry_map,
            ..
        } => {
            let mut cols = vec![ColInfo::Vertex {
                labels: labels.clone(),
            }];
            cols.extend(props.iter().map(|p| ColInfo::Prop {
                key: p.prop,
                on_vertex: true,
            }));
            if *carry_map {
                cols.push(ColInfo::Other);
            }
            Rel {
                card: stats.label_card(labels),
                cols,
            }
        }
        Fra::ScanEdges {
            types,
            src_labels,
            dst_labels,
            src_props,
            edge_props,
            dst_props,
            dir,
            carry_maps,
            ..
        } => {
            let orientations = if *dir == pgq_common::dir::Direction::Both {
                2.0
            } else {
                1.0
            };
            let card = (stats.type_card(types)
                * stats.label_sel(src_labels)
                * stats.label_sel(dst_labels)
                * orientations)
                .max(1e-6);
            let mut cols = vec![
                ColInfo::Src {
                    types: types.clone(),
                    labels: src_labels.clone(),
                },
                ColInfo::EdgeId,
                ColInfo::Dst {
                    types: types.clone(),
                    labels: dst_labels.clone(),
                },
            ];
            for p in src_props {
                cols.push(ColInfo::Prop {
                    key: p.prop,
                    on_vertex: true,
                });
            }
            for p in edge_props {
                cols.push(ColInfo::Prop {
                    key: p.prop,
                    on_vertex: false,
                });
            }
            for p in dst_props {
                cols.push(ColInfo::Prop {
                    key: p.prop,
                    on_vertex: true,
                });
            }
            for flag in [carry_maps.0, carry_maps.1, carry_maps.2] {
                if flag {
                    cols.push(ColInfo::Other);
                }
            }
            Rel { card, cols }
        }
        Fra::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let l = analyze(left, stats);
            let r = analyze(right, stats);
            let card = join_card(&l, &r, left_keys, right_keys, stats);
            let mut cols = l.cols;
            for (i, c) in r.cols.into_iter().enumerate() {
                if !right_keys.contains(&i) {
                    cols.push(c);
                }
            }
            Rel { card, cols }
        }
        Fra::SemiJoin { left, anti, .. } => {
            let l = analyze(left, stats);
            Rel {
                card: (l.card * if *anti { 0.3 } else { 0.5 }).max(1e-6),
                cols: l.cols,
            }
        }
        Fra::VarLengthJoin { left, spec, .. } => {
            let l = analyze(left, stats);
            let card =
                (l.card * expansion_multiplier(spec, stats) * stats.label_sel(&spec.dst_labels))
                    .max(1e-6);
            let mut cols = l.cols;
            cols.extend(expansion_cols(spec));
            Rel { card, cols }
        }
        Fra::Filter { input, predicate } => {
            let i = analyze(input, stats);
            let sel = selectivity(predicate, &i, stats);
            Rel {
                card: (i.card * sel).max(1e-6),
                cols: i.cols,
            }
        }
        Fra::Project { input, items } => {
            let i = analyze(input, stats);
            Rel {
                card: i.card,
                cols: projected_cols(items, &i.cols),
            }
        }
        Fra::Distinct { input } => {
            let i = analyze(input, stats);
            let mut distinct = 1.0f64;
            for c in &i.cols {
                distinct = (distinct * c.distinct(i.card, stats)).min(i.card);
            }
            Rel {
                card: distinct.max(1e-6),
                cols: i.cols,
            }
        }
        Fra::Aggregate { input, group, aggs } => {
            let i = analyze(input, stats);
            let mut groups = 1.0f64;
            for (e, _) in group {
                let d = match e {
                    ScalarExpr::Col(c) => i
                        .cols
                        .get(*c)
                        .map_or(i.card.sqrt(), |ci| ci.distinct(i.card, stats)),
                    _ => i.card.sqrt(),
                };
                groups = (groups * d).min(i.card);
            }
            let cols = group
                .iter()
                .map(|(e, _)| match e {
                    ScalarExpr::Col(c) => i.cols.get(*c).cloned().unwrap_or(ColInfo::Other),
                    _ => ColInfo::Other,
                })
                .chain(aggs.iter().map(|_| ColInfo::Other))
                .collect();
            Rel {
                card: groups.max(1.0),
                cols,
            }
        }
        Fra::Unwind { input, .. } => {
            let i = analyze(input, stats);
            let mut cols = i.cols;
            cols.push(ColInfo::Other);
            Rel {
                card: (i.card * 3.0).max(1e-6),
                cols,
            }
        }
        Fra::MultiwayJoin {
            inputs,
            var_of,
            names,
        } => {
            // Generalises `join_card`: start from the cross product and
            // divide, per shared variable, by the largest distinct
            // estimate once per extra occurrence.
            let rels: Vec<Rel> = inputs.iter().map(|i| analyze(i, stats)).collect();
            let nvars = names.len();
            let mut card: f64 = rels.iter().map(|r| r.card).product();
            let mut cols = vec![ColInfo::Other; nvars];
            let mut min_d = vec![f64::INFINITY; nvars];
            let mut max_d = vec![1.0f64; nvars];
            let mut occurs = vec![0usize; nvars];
            for (i, r) in rels.iter().enumerate() {
                let mut seen = vec![false; nvars];
                for (c, &v) in var_of[i].iter().enumerate() {
                    if v >= nvars || std::mem::replace(&mut seen[v], true) {
                        continue;
                    }
                    occurs[v] += 1;
                    let d = r
                        .cols
                        .get(c)
                        .map_or(r.card.sqrt(), |ci| ci.distinct(r.card, stats));
                    if d < min_d[v] {
                        min_d[v] = d;
                        cols[v] = r.cols.get(c).cloned().unwrap_or(ColInfo::Other);
                    }
                    max_d[v] = max_d[v].max(d);
                }
            }
            for v in 0..nvars {
                if occurs[v] >= 2 {
                    card /= max_d[v].max(1.0).powi(occurs[v] as i32 - 1);
                }
            }
            Rel {
                card: card.max(1e-6),
                cols,
            }
        }
    }
}

fn projected_cols(items: &[(ScalarExpr, String)], input: &[ColInfo]) -> Vec<ColInfo> {
    items
        .iter()
        .map(|(e, _)| match e {
            ScalarExpr::Col(c) => input.get(*c).cloned().unwrap_or(ColInfo::Other),
            _ => ColInfo::Other,
        })
        .collect()
}

fn expansion_cols(spec: &VarLenSpec) -> Vec<ColInfo> {
    let mut cols = vec![ColInfo::Vertex {
        labels: spec.dst_labels.clone(),
    }];
    cols.extend(spec.dst_props.iter().map(|p| ColInfo::Prop {
        key: p.prop,
        on_vertex: true,
    }));
    if spec.dst_carry_map {
        cols.push(ColInfo::Other);
    }
    cols.push(ColInfo::Other); // path
    cols
}

/// Expected number of reachable `(dst, path)` pairs per source vertex:
/// the per-hop fan-out summed over the (capped) hop range.
fn expansion_multiplier(spec: &VarLenSpec, stats: &PlanStats) -> f64 {
    let f = stats.fanout(spec);
    let lo = spec.min;
    let hi = spec
        .max
        .unwrap_or(lo.saturating_add(3))
        .min(lo.saturating_add(3));
    let mut total = 0.0f64;
    for k in lo..=hi.max(lo) {
        total += f.powi(k as i32).min(1e12);
    }
    total.clamp(0.01, 1e12)
}

fn join_card(l: &Rel, r: &Rel, lk: &[usize], rk: &[usize], stats: &PlanStats) -> f64 {
    let mut card = l.card * r.card;
    for (&a, &b) in lk.iter().zip(rk) {
        let dl = l
            .cols
            .get(a)
            .map_or(l.card.sqrt(), |c| c.distinct(l.card, stats));
        let dr = r
            .cols
            .get(b)
            .map_or(r.card.sqrt(), |c| c.distinct(r.card, stats));
        card /= dl.max(dr).max(1.0);
    }
    card.max(1e-6)
}

/// Selectivity of a predicate over a relation with known column
/// provenance.
fn selectivity(pred: &ScalarExpr, rel: &Rel, stats: &PlanStats) -> f64 {
    let mut sel = 1.0f64;
    for conj in conjunct_list(pred) {
        sel *= conjunct_selectivity(&conj, rel, stats);
    }
    sel.clamp(1e-9, 1.0)
}

fn conjunct_selectivity(conj: &ScalarExpr, rel: &Rel, stats: &PlanStats) -> f64 {
    let distinct_of = |c: usize| -> f64 {
        rel.cols
            .get(c)
            .map_or(rel.card.sqrt(), |ci| ci.distinct(rel.card, stats))
            .max(1.0)
    };
    match conj {
        ScalarExpr::Binary(op, a, b) => {
            let col_lit = match (a.as_ref(), b.as_ref()) {
                (ScalarExpr::Col(c), ScalarExpr::Lit(v))
                | (ScalarExpr::Lit(v), ScalarExpr::Col(c)) => Some((*c, v.clone())),
                _ => None,
            };
            let col_col = match (a.as_ref(), b.as_ref()) {
                (ScalarExpr::Col(c), ScalarExpr::Col(d)) => Some((*c, *d)),
                _ => None,
            };
            match op {
                BinOp::Eq => {
                    if let Some((c, _)) = col_lit {
                        1.0 / distinct_of(c)
                    } else if let Some((c, d)) = col_col {
                        1.0 / distinct_of(c).max(distinct_of(d))
                    } else {
                        0.1
                    }
                }
                BinOp::Neq => 0.9,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1.0 / 3.0,
                BinOp::Or => {
                    // 1 - Π (1 - sel_i) over the disjuncts.
                    let sa = conjunct_selectivity(a, rel, stats);
                    let sb = conjunct_selectivity(b, rel, stats);
                    (sa + sb - sa * sb).clamp(1e-9, 1.0)
                }
                _ => 0.25,
            }
        }
        ScalarExpr::IsNull { negated, .. } => {
            if *negated {
                0.9
            } else {
                0.1
            }
        }
        ScalarExpr::Lit(Value::Bool(true)) => 1.0,
        ScalarExpr::Lit(Value::Bool(false)) => 1e-9,
        _ => 0.25,
    }
}

fn conjunct_list(e: &ScalarExpr) -> Vec<ScalarExpr> {
    match e {
        ScalarExpr::Binary(BinOp::And, l, r) => {
            let mut out = conjunct_list(l);
            out.extend(conjunct_list(r));
            out
        }
        other => vec![other.clone()],
    }
}

fn conjoin_in_order(conjs: Vec<ScalarExpr>) -> ScalarExpr {
    conjs
        .into_iter()
        .reduce(|a, b| ScalarExpr::Binary(BinOp::And, Box::new(a), Box::new(b)))
        .expect("at least one conjunct")
}

// ---------------------------------------------------------------------------
// Region decomposition
// ---------------------------------------------------------------------------

/// A filter conjunct or semijoin reduction, applied at the earliest
/// point where its columns are available.
#[derive(Clone, Debug)]
enum Applier {
    /// A filter conjunct; column indices are region-global ids.
    Filter {
        expr: ScalarExpr,
        globals: Vec<usize>,
    },
    /// A (recursively planned) semijoin right side.
    Semi {
        right: Box<Fra>,
        right_keys: Vec<usize>,
        left_globals: Vec<usize>,
        anti: bool,
        right_card: f64,
    },
}

impl Applier {
    fn globals(&self) -> &[usize] {
        match self {
            Applier::Filter { globals, .. } => globals,
            Applier::Semi { left_globals, .. } => left_globals,
        }
    }
}

/// A variable-length join lifted out of the join tree; the enumerator
/// chooses when to run it (as soon as `src_global` is available).
#[derive(Clone, Debug)]
struct Expansion {
    src_global: usize,
    spec: VarLenSpec,
    dst: String,
    path: String,
    /// Globals of the appended columns: dst, dst props, (map), path.
    out_globals: Vec<usize>,
    multiplier: f64,
}

/// A non-join leaf of the region (already recursively planned).
#[derive(Clone, Debug)]
struct Factor {
    plan: Fra,
    /// Globals of the factor's (planned) output columns, in order.
    globals: Vec<usize>,
    rel: Rel,
}

#[derive(Default)]
struct Region {
    factors: Vec<Factor>,
    expansions: Vec<Expansion>,
    /// Equi-join key pairs as region-global column ids.
    edges: Vec<(usize, usize)>,
    /// Filters and semijoins in original (bottom-up) application order.
    appliers: Vec<Applier>,
    /// Provenance per global id.
    info: Vec<ColInfo>,
    /// Owning unit (factor index, or `factors.len() + expansion index`)
    /// per global id.
    owner: Vec<usize>,
    next_global: usize,
}

impl Region {
    fn fresh(&mut self, info: ColInfo, owner: usize) -> usize {
        let g = self.next_global;
        self.next_global += 1;
        self.info.push(info);
        self.owner.push(owner);
        g
    }
}

/// Flatten the reorderable region rooted at `fra` into `region`,
/// returning the subtree's output columns as global ids.
fn decompose(
    fra: &Fra,
    stats: &PlanStats,
    region: &mut Region,
    opts: &PlanOptions,
    report: &mut PlanReport,
) -> Vec<usize> {
    match fra {
        Fra::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let lg = decompose(left, stats, region, opts, report);
            let rg = decompose(right, stats, region, opts, report);
            for (&a, &b) in left_keys.iter().zip(right_keys) {
                region.edges.push((lg[a], rg[b]));
            }
            let mut out = lg;
            for (i, g) in rg.into_iter().enumerate() {
                if !right_keys.contains(&i) {
                    out.push(g);
                }
            }
            out
        }
        Fra::Filter { input, predicate } => {
            let ig = decompose(input, stats, region, opts, report);
            for conj in conjunct_list(predicate) {
                let remapped = conj.remap_columns(&|c| ig[c]);
                let globals = remapped.columns();
                region.appliers.push(Applier::Filter {
                    expr: remapped,
                    globals,
                });
            }
            ig
        }
        Fra::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
            anti,
        } => {
            let lg = decompose(left, stats, region, opts, report);
            let (rp, rm) = plan_rec(right, stats, opts, report);
            let right_card = estimate(&rp, stats);
            region.appliers.push(Applier::Semi {
                right: Box::new(rp),
                right_keys: right_keys.iter().map(|&k| rm[k]).collect(),
                left_globals: left_keys.iter().map(|&k| lg[k]).collect(),
                anti: *anti,
                right_card,
            });
            lg
        }
        Fra::VarLengthJoin {
            left,
            src_col,
            spec,
            dst,
            path,
        } => {
            let lg = decompose(left, stats, region, opts, report);
            let unit = region.factors.len() + region.expansions.len();
            let mut out_globals = vec![region.fresh(
                ColInfo::Vertex {
                    labels: spec.dst_labels.clone(),
                },
                unit,
            )];
            for p in &spec.dst_props {
                out_globals.push(region.fresh(
                    ColInfo::Prop {
                        key: p.prop,
                        on_vertex: true,
                    },
                    unit,
                ));
            }
            if spec.dst_carry_map {
                out_globals.push(region.fresh(ColInfo::Other, unit));
            }
            out_globals.push(region.fresh(ColInfo::Other, unit)); // path
            region.expansions.push(Expansion {
                src_global: lg[*src_col],
                spec: spec.clone(),
                dst: dst.clone(),
                path: path.clone(),
                out_globals: out_globals.clone(),
                multiplier: expansion_multiplier(spec, stats) * stats.label_sel(&spec.dst_labels),
            });
            let mut out = lg;
            out.extend(out_globals);
            out
        }
        leaf => {
            let (fp, fm) = plan_rec(leaf, stats, opts, report);
            let rel = analyze(&fp, stats);
            let unit = region.factors.len() + region.expansions.len();
            let globals: Vec<usize> = rel
                .cols
                .iter()
                .map(|c| region.fresh(c.clone(), unit))
                .collect();
            // The leaf's original columns, rebased through the leaf's own
            // planning permutation.
            let out = fm.iter().map(|&c| globals[c]).collect();
            region.factors.push(Factor {
                plan: fp,
                globals,
                rel,
            });
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Enumeration + rebuild
// ---------------------------------------------------------------------------

/// A partially built join (a set of units with all coverable appliers
/// applied).
#[derive(Clone, Debug)]
struct Built {
    plan: Fra,
    /// Global ids of the output columns, in order.
    globals: Vec<usize>,
    /// Global → output position; dropped join keys alias their kept
    /// partner's position.
    pos: FxHashMap<usize, usize>,
    cols: Vec<ColInfo>,
    card: f64,
    /// Total estimated intermediate cardinality (the C_out cost).
    cost: f64,
    /// Bitmask over `appliers` already applied.
    applied: u64,
    /// Bitmask over units (factors then expansions) included.
    mask: u64,
}

struct Enumerator<'a> {
    region: &'a Region,
    stats: &'a PlanStats,
    unit_count: usize,
}

impl<'a> Enumerator<'a> {
    /// Are all of `globals` produced by units inside `mask`?
    fn covered(&self, globals: &[usize], mask: u64) -> bool {
        globals
            .iter()
            .all(|&g| mask & (1 << self.region.owner[g]) != 0)
    }

    fn singleton(&self, ix: usize) -> Built {
        let f = &self.region.factors[ix];
        let mut pos = FxHashMap::default();
        for (i, &g) in f.globals.iter().enumerate() {
            pos.insert(g, i);
        }
        let b = Built {
            plan: f.plan.clone(),
            globals: f.globals.clone(),
            pos,
            cols: f.rel.cols.clone(),
            card: f.rel.card.max(1.0),
            cost: 0.0,
            applied: 0,
            mask: 1 << ix,
        };
        self.apply_appliers(b)
    }

    /// Apply every not-yet-applied applier whose columns are covered, in
    /// original order; filters applying at the same point fuse into one
    /// σ whose conjuncts keep their original order.
    fn apply_appliers(&self, mut b: Built) -> Built {
        let mut filter_conjs: Vec<ScalarExpr> = Vec::new();
        let mut sel = 1.0f64;
        for (i, a) in self.region.appliers.iter().enumerate() {
            if b.applied & (1 << i) != 0 || !self.covered(a.globals(), b.mask) {
                continue;
            }
            b.applied |= 1 << i;
            match a {
                Applier::Filter { expr, .. } => {
                    let remapped = expr.remap_columns(&|g| b.pos[&g]);
                    sel *= conjunct_selectivity(
                        &remapped,
                        &Rel {
                            card: b.card,
                            cols: b.cols.clone(),
                        },
                        self.stats,
                    )
                    .max(1e-9);
                    filter_conjs.push(remapped);
                }
                Applier::Semi {
                    right,
                    right_keys,
                    left_globals,
                    anti,
                    right_card,
                } => {
                    // Flush pending filters first to keep original
                    // relative order between σ and ⋉.
                    if !filter_conjs.is_empty() {
                        b.plan = Fra::Filter {
                            input: Box::new(b.plan),
                            predicate: conjoin_in_order(std::mem::take(&mut filter_conjs)),
                        };
                        b.card = (b.card * sel).max(1e-6);
                        sel = 1.0;
                    }
                    b.plan = Fra::SemiJoin {
                        left: Box::new(b.plan),
                        right: right.clone(),
                        left_keys: left_globals.iter().map(|g| b.pos[g]).collect(),
                        right_keys: right_keys.clone(),
                        anti: *anti,
                    };
                    b.card = (b.card * if *anti { 0.3 } else { 0.5 }).max(1e-6);
                    b.cost += right_card;
                }
            }
        }
        if !filter_conjs.is_empty() {
            b.plan = Fra::Filter {
                input: Box::new(b.plan),
                predicate: conjoin_in_order(filter_conjs),
            };
            b.card = (b.card * sel).max(1e-6);
        }
        b
    }

    /// Join two disjoint builds on every key edge crossing between them
    /// (a cross join when none does).
    fn join(&self, l: &Built, r: &Built) -> Built {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in &self.region.edges {
            let (la, lb) = (self.region.owner[a], self.region.owner[b]);
            let (cross_ab, cross_ba) = (
                l.mask & (1 << la) != 0 && r.mask & (1 << lb) != 0,
                l.mask & (1 << lb) != 0 && r.mask & (1 << la) != 0,
            );
            let pair = if cross_ab {
                (l.pos[&a], r.pos[&b])
            } else if cross_ba {
                (l.pos[&b], r.pos[&a])
            } else {
                continue;
            };
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        let lk: Vec<usize> = pairs.iter().map(|&(a, _)| a).collect();
        let rk: Vec<usize> = pairs.iter().map(|&(_, b)| b).collect();
        let card = join_card(
            &Rel {
                card: l.card,
                cols: l.cols.clone(),
            },
            &Rel {
                card: r.card,
                cols: r.cols.clone(),
            },
            &lk,
            &rk,
            self.stats,
        );

        let mut globals = l.globals.clone();
        let mut cols = l.cols.clone();
        let mut pos = l.pos.clone();
        // Position of each surviving right column: rank among non-keys.
        let mut right_new_pos: Vec<Option<usize>> = vec![None; r.globals.len()];
        for (i, (&g, c)) in r.globals.iter().zip(&r.cols).enumerate() {
            if let Some(k) = rk.iter().position(|&p| p == i) {
                // Dropped key column: alias to its left partner.
                right_new_pos[i] = Some(lk[k]);
                pos.insert(g, lk[k]);
            } else {
                let p = globals.len();
                right_new_pos[i] = Some(p);
                globals.push(g);
                cols.push(c.clone());
                pos.insert(g, p);
            }
        }
        // Right-side aliases (globals dropped inside `r`) re-point too.
        for (&g, &old) in &r.pos {
            pos.entry(g)
                .or_insert_with(|| right_new_pos[old].expect("old position exists"));
        }
        let b = Built {
            plan: Fra::HashJoin {
                left: Box::new(l.plan.clone()),
                right: Box::new(r.plan.clone()),
                left_keys: lk,
                right_keys: rk,
            },
            globals,
            pos,
            cols,
            card,
            cost: l.cost + r.cost + card,
            applied: l.applied | r.applied,
            mask: l.mask | r.mask,
        };
        self.apply_appliers(b)
    }

    /// Run a pending ⋈* expansion on `b`.
    fn expand(&self, b: &Built, ex_ix: usize) -> Built {
        let e = &self.region.expansions[ex_ix];
        let card = (b.card * e.multiplier).max(1e-6);
        let mut out = b.clone();
        out.plan = Fra::VarLengthJoin {
            left: Box::new(out.plan),
            src_col: out.pos[&e.src_global],
            spec: e.spec.clone(),
            dst: e.dst.clone(),
            path: e.path.clone(),
        };
        for &g in &e.out_globals {
            let p = out.globals.len();
            out.globals.push(g);
            out.cols.push(self.region.info[g].clone());
            out.pos.insert(g, p);
        }
        out.card = card;
        out.cost += card;
        out.mask |= 1 << (self.region.factors.len() + ex_ix);
        self.apply_appliers(out)
    }

    /// Exact dynamic programming over unit subsets.
    fn dp(&self) -> Built {
        let n = self.unit_count;
        let factors = self.region.factors.len();
        let full: u64 = (1 << n) - 1;
        let mut dp: Vec<Option<Built>> = vec![None; 1 << n];
        for i in 0..factors {
            dp[1usize << i] = Some(self.singleton(i));
        }
        for mask in 1..=full {
            if dp[mask as usize].is_some() && mask.count_ones() <= 1 {
                continue;
            }
            let mut best: Option<Built> = None;
            // (a) extend a sub-build with an expansion in the mask.
            for e in 0..self.region.expansions.len() {
                let bit = 1u64 << (factors + e);
                if mask & bit == 0 {
                    continue;
                }
                let sub = mask & !bit;
                if sub == 0 {
                    continue;
                }
                if let Some(b) = dp[sub as usize].as_ref() {
                    if self.covered(&[self.region.expansions[e].src_global], sub) {
                        consider(&mut best, self.expand(b, e));
                    }
                }
            }
            // (b) join two disjoint sub-builds; fix the lowest unit on
            // the left so each split is tried once with the syntactic
            // orientation (canonicalisation normalises orientation
            // anyway).
            let low = mask & mask.wrapping_neg();
            let mut sub = (mask - 1) & mask;
            while sub != 0 {
                if sub & low != 0 {
                    let other = mask & !sub;
                    if let (Some(a), Some(b)) =
                        (dp[sub as usize].as_ref(), dp[other as usize].as_ref())
                    {
                        consider(&mut best, self.join(a, b));
                    }
                }
                sub = (sub - 1) & mask;
            }
            dp[mask as usize] = best;
        }
        dp[full as usize].clone().expect("full mask is reachable")
    }

    /// Greedy minimum-cost-expansion for large regions: repeatedly take
    /// the move (join of two connected components, pending expansion, or
    /// — only when nothing else remains — a cross join) with the
    /// smallest resulting cardinality.
    fn greedy(&self) -> Built {
        let factors = self.region.factors.len();
        let mut comps: Vec<Built> = (0..factors).map(|i| self.singleton(i)).collect();
        let mut pending: Vec<usize> = (0..self.region.expansions.len()).collect();
        loop {
            if comps.len() == 1 && pending.is_empty() {
                return comps.pop().expect("one component");
            }
            enum Move {
                Join(usize, usize),
                Expand(usize, usize),
            }
            // Keep the winning candidate's Built so executing the move
            // reuses it instead of rebuilding.
            let mut best: Option<(f64, Move, Built)> = None;
            let mut connected_exists = false;
            for i in 0..comps.len() {
                for j in (i + 1)..comps.len() {
                    let connected = self.region.edges.iter().any(|&(a, b)| {
                        let (oa, ob) = (self.region.owner[a], self.region.owner[b]);
                        (comps[i].mask & (1 << oa) != 0 && comps[j].mask & (1 << ob) != 0)
                            || (comps[i].mask & (1 << ob) != 0 && comps[j].mask & (1 << oa) != 0)
                    });
                    if connected {
                        connected_exists = true;
                        let joined = self.join(&comps[i], &comps[j]);
                        if best.as_ref().is_none_or(|(c, _, _)| joined.card < *c) {
                            best = Some((joined.card, Move::Join(i, j), joined));
                        }
                    }
                }
            }
            for (px, &e) in pending.iter().enumerate() {
                let src = self.region.expansions[e].src_global;
                if let Some(i) = comps
                    .iter()
                    .position(|c| c.mask & (1 << self.region.owner[src]) != 0)
                {
                    let expanded = self.expand(&comps[i], e);
                    if best.as_ref().is_none_or(|(c, _, _)| expanded.card < *c) {
                        best = Some((expanded.card, Move::Expand(i, px), expanded));
                    }
                }
            }
            if best.is_none() && !connected_exists && comps.len() > 1 {
                // Disconnected join graph: cross-join the two smallest.
                let mut order: Vec<usize> = (0..comps.len()).collect();
                order.sort_by(|&a, &b| {
                    comps[a]
                        .card
                        .partial_cmp(&comps[b].card)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                let (i, j) = (order[0].min(order[1]), order[0].max(order[1]));
                let joined = self.join(&comps[i], &comps[j]);
                best = Some((f64::INFINITY, Move::Join(i, j), joined));
            }
            let (_, mv, built) = best.expect("a move always exists");
            match mv {
                Move::Join(i, j) => {
                    comps.remove(j);
                    comps[i] = built;
                }
                Move::Expand(i, px) => {
                    pending.remove(px);
                    comps[i] = built;
                }
            }
        }
    }
}

/// Keep the candidate with the strictly smaller `(cost, card)`; the
/// first minimal candidate (in deterministic enumeration order) wins
/// ties, so planning never depends on variable names.
fn consider(best: &mut Option<Built>, candidate: Built) {
    let better = match best {
        None => true,
        Some(b) => (candidate.cost, candidate.card) < (b.cost, b.card),
    };
    if better {
        *best = Some(candidate);
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// The planner's result: a plan computing the same bag with the same
/// output schema.
#[derive(Clone, Debug)]
pub struct Planned {
    /// The (possibly reordered) plan. `fra.schema()` equals the input's.
    pub fra: Fra,
    /// Did planning change the plan structurally?
    pub changed: bool,
}

/// One fuse/don't-fuse decision over a cyclic join region, recorded for
/// `EXPLAIN`. Costs are in the planner's abstract tuple units (total
/// intermediate cardinality, skew-adjusted on the binary side); they
/// are comparable to each other, not to wall-clock.
#[derive(Clone, Debug)]
pub struct FuseDecision {
    /// The region's output variable names, in elimination order.
    pub vars: Vec<String>,
    /// Relations joined by the region.
    pub inputs: usize,
    /// Estimated cost of the fused ⨝ⁿ level-walk (incl. the
    /// intersection-overhead constant).
    pub nary_cost: f64,
    /// Estimated cost of the best binary join tree, multiplied by the
    /// catalog's out-degree skew (wedge intermediates grow with Σ deg²,
    /// which the uniform join estimate misses).
    pub binary_cost: f64,
    /// Estimated resident tuples of the fused node's input memories.
    pub nary_memory: f64,
    /// Estimated resident tuples of the binary tree's join memories.
    pub binary_memory: f64,
    /// Did the region fuse into a ⨝ⁿ node?
    pub fused: bool,
    /// Was the outcome forced by [`WcojMode::Forced`] rather than won
    /// on cost?
    pub forced: bool,
}

impl FuseDecision {
    /// One-line `EXPLAIN` rendering.
    pub fn render(&self) -> String {
        format!(
            "wcoj: cyclic region {{{}}} ({} rels): n-ary ≈ {:.0} vs binary ≈ {:.0} units (mem ≈ {:.0} vs ≈ {:.0} tuples) → {}{}",
            self.vars.join(", "),
            self.inputs,
            self.nary_cost,
            self.binary_cost,
            self.nary_memory,
            self.binary_memory,
            if self.fused { "fused ⨝ⁿ" } else { "binary join tree" },
            if self.forced { " (forced)" } else { "" },
        )
    }
}

/// Side-channel facts gathered while planning (currently the wcoj fuse
/// decisions); rendered by `EXPLAIN` surfaces.
#[derive(Clone, Debug, Default)]
pub struct PlanReport {
    /// One entry per cyclic region that was *eligible* for fusion
    /// (cyclic, ≥ 3 factors, no ⋈* expansion), whatever was decided.
    pub fuse_decisions: Vec<FuseDecision>,
}

/// Cost-based planning of `fra` under the statistics snapshot `stats`.
///
/// The result computes the same bag for every graph and exposes the
/// same output schema (a restoring projection is appended when the
/// chosen join order permutes columns; canonicalisation folds it into
/// its column mapping, so it costs no operator node). Planning is a
/// pure function of the plan structure and `stats` — never of variable
/// names — so `canon(plan(q)) == canon(plan(rename(q)))`.
pub fn plan(fra: &Fra, stats: &PlanStats) -> Planned {
    plan_with(fra, stats, &PlanOptions::default())
}

/// [`plan`] with explicit [`PlanOptions`] (the IVM layer threads its
/// `PGQ_DISABLE_WCOJ` kill-switch through here).
pub fn plan_with(fra: &Fra, stats: &PlanStats, opts: &PlanOptions) -> Planned {
    plan_with_report(fra, stats, opts).0
}

/// [`plan_with`], additionally returning the [`PlanReport`] gathered
/// along the way (the wcoj fuse/don't-fuse decisions `EXPLAIN` shows).
pub fn plan_with_report(fra: &Fra, stats: &PlanStats, opts: &PlanOptions) -> (Planned, PlanReport) {
    let mut report = PlanReport::default();
    let (planned, mapping) = plan_rec(fra, stats, opts, &mut report);
    let restored = restore_schema(planned, &mapping, fra);
    let changed = restored != *fra;
    (
        Planned {
            fra: restored,
            changed,
        },
        report,
    )
}

/// Wrap `planned` so its schema (names and order) equals `original`'s.
fn restore_schema(planned: Fra, mapping: &[usize], original: &Fra) -> Fra {
    let names = original.schema();
    let identity = mapping.iter().enumerate().all(|(i, &j)| i == j);
    if identity && planned.schema() == names {
        return planned;
    }
    Fra::Project {
        input: Box::new(planned),
        items: mapping
            .iter()
            .zip(&names)
            .map(|(&c, n)| (ScalarExpr::Col(c), n.clone()))
            .collect(),
    }
}

/// Recursive planning; returns the planned subtree plus the bijection
/// `mapping[i] = j`: column `i` of the original subtree's output is
/// column `j` of the planned subtree's output.
fn plan_rec(
    fra: &Fra,
    stats: &PlanStats,
    opts: &PlanOptions,
    report: &mut PlanReport,
) -> (Fra, Vec<usize>) {
    match fra {
        Fra::HashJoin { .. }
        | Fra::Filter { .. }
        | Fra::SemiJoin { .. }
        | Fra::VarLengthJoin { .. } => plan_region(fra, stats, opts, report),
        Fra::Project { input, items } => {
            let (ci, m) = plan_rec(input, stats, opts, report);
            (
                Fra::Project {
                    input: Box::new(ci),
                    items: items
                        .iter()
                        .map(|(e, n)| (e.remap_columns(&|c| m[c]), n.clone()))
                        .collect(),
                },
                (0..items.len()).collect(),
            )
        }
        Fra::Distinct { input } => {
            let (ci, m) = plan_rec(input, stats, opts, report);
            (
                Fra::Distinct {
                    input: Box::new(ci),
                },
                m,
            )
        }
        Fra::Aggregate { input, group, aggs } => {
            let (ci, m) = plan_rec(input, stats, opts, report);
            (
                Fra::Aggregate {
                    input: Box::new(ci),
                    group: group
                        .iter()
                        .map(|(e, n)| (e.remap_columns(&|c| m[c]), n.clone()))
                        .collect(),
                    aggs: aggs
                        .iter()
                        .map(|(c, n)| {
                            (
                                crate::expr::AggCall {
                                    func: c.func,
                                    arg: c.arg.as_ref().map(|a| a.remap_columns(&|x| m[x])),
                                    distinct: c.distinct,
                                },
                                n.clone(),
                            )
                        })
                        .collect(),
                },
                (0..group.len() + aggs.len()).collect(),
            )
        }
        Fra::Unwind { input, expr, alias } => {
            let (ci, m) = plan_rec(input, stats, opts, report);
            let arity = m.len();
            let mut mapping = m.clone();
            mapping.push(arity);
            (
                Fra::Unwind {
                    input: Box::new(ci),
                    expr: expr.remap_columns(&|c| m[c]),
                    alias: alias.clone(),
                },
                mapping,
            )
        }
        Fra::MultiwayJoin {
            inputs,
            var_of,
            names,
        } => {
            // A pre-existing n-ary node (hand-built, or a re-planned
            // plan): recursively plan each operand and push its
            // variable map through the operand's planning bijection.
            let mut new_inputs = Vec::with_capacity(inputs.len());
            let mut new_vars = Vec::with_capacity(inputs.len());
            for (inp, vars) in inputs.iter().zip(var_of) {
                let (ci, m) = plan_rec(inp, stats, opts, report);
                let mut nv = vec![0usize; vars.len()];
                for (c, &v) in vars.iter().enumerate() {
                    nv[m[c]] = v;
                }
                new_inputs.push(ci);
                new_vars.push(nv);
            }
            (
                Fra::MultiwayJoin {
                    inputs: new_inputs,
                    var_of: new_vars,
                    names: names.clone(),
                },
                (0..names.len()).collect(),
            )
        }
        leaf @ (Fra::Unit | Fra::ScanVertices { .. } | Fra::ScanEdges { .. }) => {
            (leaf.clone(), (0..leaf.schema().len()).collect())
        }
    }
}

/// Plan one reorderable region. Falls back to the original subtree
/// (identity mapping) if the rebuilt plan fails its arity check — a
/// safety net for hand-built plans outside the compiler's invariants.
fn plan_region(
    fra: &Fra,
    stats: &PlanStats,
    opts: &PlanOptions,
    report: &mut PlanReport,
) -> (Fra, Vec<usize>) {
    let mut region = Region::default();
    let output = decompose(fra, stats, &mut region, opts, report);
    let unit_count = region.factors.len() + region.expansions.len();
    // Units and appliers are tracked in u64 bitmasks; a region exceeding
    // 63 of either (far beyond any compiled query) keeps its syntactic
    // order rather than risking shift overflow.
    if unit_count > 63 || region.appliers.len() > 63 {
        return (fra.clone(), (0..fra.schema().len()).collect());
    }
    let fused = if opts.wcoj == WcojMode::Disabled {
        None
    } else {
        try_wcoj(&region, &output, &fra.schema(), stats)
    };
    // The binary tree is built even when a fused candidate exists: it
    // is both the cost baseline of the fuse decision and the fallback
    // plan when the gate keeps the region binary.
    let built = if unit_count > MAX_DP_UNITS {
        let e = Enumerator {
            region: &region,
            stats,
            unit_count,
        };
        e.greedy()
    } else {
        let e = Enumerator {
            region: &region,
            stats,
            unit_count,
        };
        e.dp()
    };
    // Every applier must have been applied and every original output
    // column must be present (possibly via a dropped-key alias).
    let complete = built.applied.count_ones() as usize == region.appliers.len()
        && output.iter().all(|g| built.pos.contains_key(g))
        && built.globals.len() == fra.schema().len();
    if let Some(cand) = fused {
        // Binary time estimate: total intermediate cardinality under
        // the uniform containment assumption, scaled by the catalog's
        // out-degree skew — wedge intermediates really grow with
        // Σ deg², which the uniform estimate misses. The n-ary side
        // pays the intersection-overhead constant instead: its leapfrog
        // seeks gallop through hubs, so skew barely touches it.
        let (bin_cost, bin_mem) = if complete {
            (built.cost, built.cost)
        } else {
            (f64::INFINITY, f64::INFINITY)
        };
        let binary_cost = bin_cost * stats.out_degree_skew();
        let nary_cost = WCOJ_OVERHEAD * cand.nary_cost;
        let fuse = match opts.wcoj {
            WcojMode::Forced => true,
            WcojMode::CostBased => {
                nary_cost <= binary_cost || bin_mem > WCOJ_MEM_RATIO * cand.nary_memory
            }
            WcojMode::Disabled => unreachable!("no fused candidate when disabled"),
        };
        report.fuse_decisions.push(FuseDecision {
            vars: cand.vars,
            inputs: cand.inputs,
            nary_cost,
            binary_cost,
            nary_memory: cand.nary_memory,
            binary_memory: bin_mem,
            fused: fuse,
            forced: opts.wcoj == WcojMode::Forced,
        });
        if fuse {
            return (cand.plan, cand.mapping);
        }
    }
    if !complete {
        debug_assert!(false, "planner produced an incomplete region rebuild");
        return (fra.clone(), (0..fra.schema().len()).collect());
    }
    let mapping: Vec<usize> = output.iter().map(|g| built.pos[g]).collect();
    (built.plan, mapping)
}

// ---------------------------------------------------------------------------
// Worst-case optimal fusion of cyclic regions
// ---------------------------------------------------------------------------

/// A fused-plan candidate built by [`try_wcoj`]: the ⨝ⁿ plan plus the
/// cost/memory estimates [`plan_region`]'s gate weighs against the
/// binary join tree.
struct WcojCandidate {
    /// The fused plan (⨝ⁿ plus any unpushable appliers above it).
    plan: Fra,
    /// Output column → variable position, as [`plan_region`] returns.
    mapping: Vec<usize>,
    /// Variable names in elimination order (for [`FuseDecision`]).
    vars: Vec<String>,
    /// Number of joined relations.
    inputs: usize,
    /// Raw level-walk cost estimate (tuples touched per full
    /// recomputation, before the [`WCOJ_OVERHEAD`] multiplier).
    nary_cost: f64,
    /// Estimated resident tuples of the fused node's input memories.
    nary_memory: f64,
}

/// Build a fused [`Fra::MultiwayJoin`] candidate for the region.
/// Returns `None` when the region is not eligible: fewer than three
/// factors, any ⋈* expansion (those stay on the binary path), or an
/// *acyclic* join hypergraph — binary plans are already worst-case
/// optimal for tree-shaped queries and have the leaner per-delta
/// constant. Whether an eligible candidate is *used* is decided by the
/// cost gate in [`plan_region`], not here.
///
/// Eligibility and the chosen variable order are pure functions of the
/// region *structure* and `stats` (class ids come from the syntactic
/// global order, never from names), so alpha-equivalent cyclic views
/// fuse into identical nodes and keep hash-consing.
fn try_wcoj(
    region: &Region,
    output: &[usize],
    schema: &[String],
    stats: &PlanStats,
) -> Option<WcojCandidate> {
    if !region.expansions.is_empty() || region.factors.len() < 3 {
        return None;
    }
    let n_globals = region.next_global;
    // Union-find: globals equated by a join edge share a variable.
    let mut parent: Vec<usize> = (0..n_globals).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let n = parent[c];
            parent[c] = r;
            c = n;
        }
        r
    }
    for &(a, b) in &region.edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }
    // Class (= variable) per global, numbered by smallest member.
    let mut class_of = vec![usize::MAX; n_globals];
    let mut n_classes = 0usize;
    for g in 0..n_globals {
        let r = find(&mut parent, g);
        if class_of[r] == usize::MAX {
            class_of[r] = n_classes;
            n_classes += 1;
        }
        class_of[g] = class_of[r];
    }
    // Per-factor variable sets, and the factors containing each class.
    let mut factor_classes: Vec<Vec<usize>> = Vec::with_capacity(region.factors.len());
    let mut containing: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (fi, f) in region.factors.iter().enumerate() {
        let mut cs: Vec<usize> = f.globals.iter().map(|&g| class_of[g]).collect();
        cs.sort_unstable();
        cs.dedup();
        for &c in &cs {
            containing[c].push(fi);
        }
        factor_classes.push(cs);
    }
    if !is_cyclic(&factor_classes, n_classes) {
        return None;
    }

    // Distinct-value estimate per class: the tightest bound any member
    // column provides (the catalog's per-type distinct endpoints).
    let mut distinct = vec![f64::INFINITY; n_classes];
    for (g, &c) in class_of.iter().enumerate() {
        let card = region.factors[region.owner[g]].rel.card;
        let d = region.info[g].distinct(card, stats);
        if d < distinct[c] {
            distinct[c] = d;
        }
    }
    // Elimination order: join variables (in ≥2 factors) first, chosen
    // greedily — stay connected to the already-ordered set, then
    // smallest distinct estimate, then class id — so the tightest
    // intersections run outermost. Payload variables (single factor)
    // bind last; extending a full join-variable binding with them is a
    // plain residual scan.
    let mut order: Vec<usize> = Vec::with_capacity(n_classes);
    let mut chosen = vec![false; n_classes];
    let mut factor_touched = vec![false; region.factors.len()];
    let join_vars: Vec<usize> = (0..n_classes)
        .filter(|&c| containing[c].len() >= 2)
        .collect();
    for _ in 0..join_vars.len() {
        let mut best = usize::MAX;
        let mut best_key = (true, f64::INFINITY);
        for &c in &join_vars {
            if chosen[c] {
                continue;
            }
            let connected = order.is_empty() || containing[c].iter().any(|&f| factor_touched[f]);
            let key = (!connected, distinct[c]);
            if best == usize::MAX || key < best_key {
                best_key = key;
                best = c;
            }
        }
        chosen[best] = true;
        for &f in &containing[best] {
            factor_touched[f] = true;
        }
        order.push(best);
    }
    for (c, &done) in chosen.iter().enumerate() {
        if !done {
            order.push(c);
        }
    }
    let mut var_id = vec![0usize; n_classes];
    for (v, &c) in order.iter().enumerate() {
        var_id[c] = v;
    }

    // Original output column k carries global `output[k]`, exposed by
    // the node at its variable's position. Compiled plans surface each
    // variable exactly once; bail out to the binary path otherwise.
    let mapping: Vec<usize> = output.iter().map(|&g| var_id[class_of[g]]).collect();
    if mapping.len() != n_classes {
        return None;
    }
    let mut seen = vec![false; n_classes];
    for &v in &mapping {
        if std::mem::replace(&mut seen[v], true) {
            return None;
        }
    }
    let mut names: Vec<String> = (0..n_classes).map(|v| format!("_v{v}")).collect();
    for (k, &g) in output.iter().enumerate() {
        names[var_id[class_of[g]]] = schema[k].clone();
    }

    // Level-walk cost estimate of the generic join under the chosen
    // elimination order. At each level the operator intersects, for
    // every factor containing the variable, that factor's candidate
    // list given its already-bound variables; a leapfrog round costs
    // (smallest candidate count) × (number of cursors) seeks, paid once
    // per bound prefix. The per-factor candidate count is the factor's
    // cardinality divided by the distinct combinations of its bound
    // variables (uniform fan-out; skew is the *binary* side's problem —
    // galloping makes the intersection insensitive to it). The
    // intersection result follows the containment assumption
    // Π s_f / U^(k−1), capped at the smallest input.
    let cards: Vec<f64> = region.factors.iter().map(|f| f.rel.card.max(1.0)).collect();
    let mut bound = vec![false; n_classes];
    let mut nary_cost = 0.0f64;
    let mut prefix = 1.0f64;
    for &c in &order {
        let u = distinct[c].max(1.0);
        let mut s_min = f64::INFINITY;
        let mut s_prod = 1.0f64;
        let k = containing[c].len();
        for &fi in &containing[c] {
            let bound_distinct: f64 = factor_classes[fi]
                .iter()
                .filter(|&&c2| bound[c2])
                .map(|&c2| distinct[c2].max(1.0))
                .product();
            let s = (cards[fi] / bound_distinct).clamp(1.0, u);
            s_min = s_min.min(s);
            s_prod *= s;
        }
        nary_cost += prefix * s_min * k as f64;
        let inter = (s_prod / u.powi(k as i32 - 1)).min(s_min).max(1e-3);
        prefix *= inter;
        bound[c] = true;
    }
    let nary_memory: f64 = cards.iter().sum();

    // Push single-factor filter conjuncts into their factor (so trie
    // memories stay pruned); multi-factor filters and all semijoins
    // apply above the node, in their original relative order.
    let mut factor_plans: Vec<Fra> = region.factors.iter().map(|f| f.plan.clone()).collect();
    let mut pushed = vec![false; region.appliers.len()];
    for (ai, a) in region.appliers.iter().enumerate() {
        if let Applier::Filter { expr, globals } = a {
            let owners: Vec<usize> = globals.iter().map(|&g| region.owner[g]).collect();
            if let Some((&f0, rest)) = owners.split_first() {
                if rest.iter().all(|&f| f == f0) {
                    let fac = &region.factors[f0];
                    let remapped = expr.remap_columns(&|g| {
                        fac.globals
                            .iter()
                            .position(|&x| x == g)
                            .expect("global owned by factor")
                    });
                    factor_plans[f0] = match std::mem::replace(&mut factor_plans[f0], Fra::Unit) {
                        Fra::Filter { input, predicate } => Fra::Filter {
                            input,
                            predicate: ScalarExpr::Binary(
                                BinOp::And,
                                Box::new(predicate),
                                Box::new(remapped),
                            ),
                        },
                        other => Fra::Filter {
                            input: Box::new(other),
                            predicate: remapped,
                        },
                    };
                    pushed[ai] = true;
                }
            }
        }
    }
    let var_of: Vec<Vec<usize>> = region
        .factors
        .iter()
        .map(|f| f.globals.iter().map(|&g| var_id[class_of[g]]).collect())
        .collect();
    let vars = names.clone();
    let mut plan = Fra::MultiwayJoin {
        inputs: factor_plans,
        var_of,
        names,
    };
    let to_var = |g: usize| var_id[class_of[g]];
    let mut conjs: Vec<ScalarExpr> = Vec::new();
    for (ai, a) in region.appliers.iter().enumerate() {
        if pushed[ai] {
            continue;
        }
        match a {
            Applier::Filter { expr, .. } => conjs.push(expr.remap_columns(&to_var)),
            Applier::Semi {
                right,
                right_keys,
                left_globals,
                anti,
                ..
            } => {
                if !conjs.is_empty() {
                    plan = Fra::Filter {
                        input: Box::new(plan),
                        predicate: conjoin_in_order(std::mem::take(&mut conjs)),
                    };
                }
                plan = Fra::SemiJoin {
                    left: Box::new(plan),
                    right: right.clone(),
                    left_keys: left_globals.iter().map(|&g| to_var(g)).collect(),
                    right_keys: right_keys.clone(),
                    anti: *anti,
                };
            }
        }
    }
    if !conjs.is_empty() {
        plan = Fra::Filter {
            input: Box::new(plan),
            predicate: conjoin_in_order(conjs),
        };
    }
    Some(WcojCandidate {
        plan,
        mapping,
        vars,
        inputs: region.factors.len(),
        nary_cost,
        nary_memory,
    })
}

/// GYO ear removal: a join hypergraph is acyclic iff repeatedly
/// (a) deleting vertices that occur in exactly one hyperedge and
/// (b) deleting hyperedges contained in another (or empty) reduces it
/// to nothing.
fn is_cyclic(hyperedges: &[Vec<usize>], n_vertices: usize) -> bool {
    let mut edges: Vec<Vec<usize>> = hyperedges.to_vec(); // kept sorted+dedup'd
    loop {
        let mut changed = false;
        let mut occ = vec![0usize; n_vertices];
        for e in &edges {
            for &v in e {
                occ[v] += 1;
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|&v| occ[v] > 1);
            changed |= e.len() != before;
        }
        let mut keep = vec![true; edges.len()];
        for i in 0..edges.len() {
            if edges[i].is_empty() {
                keep[i] = false;
                changed = true;
                continue;
            }
            for j in 0..edges.len() {
                if i == j || !keep[j] {
                    continue;
                }
                let subset = edges[i].iter().all(|v| edges[j].binary_search(v).is_ok());
                if subset && (edges[i].len() < edges[j].len() || i > j) {
                    keep[i] = false;
                    changed = true;
                    break;
                }
            }
        }
        if keep.contains(&false) {
            let mut k = keep.iter();
            edges.retain(|_| *k.next().expect("keep flag per edge"));
        }
        if edges.is_empty() {
            return false;
        }
        if !changed {
            return true;
        }
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------------

/// Render `fra` with the estimated output cardinality of every
/// operator — the `EXPLAIN` view of the cost model.
pub fn explain_with_estimates(fra: &Fra, stats: &PlanStats) -> String {
    let mut out = String::new();
    render(fra, stats, 0, &mut out);
    out
}

fn render(fra: &Fra, stats: &PlanStats, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let card = estimate(fra, stats);
    let pad = "  ".repeat(depth);
    let describe = |f: &Fra| -> String {
        match f {
            Fra::Unit => "Unit".into(),
            Fra::ScanVertices { var, labels, .. } => format!(
                "©({var}{})",
                labels
                    .iter()
                    .map(|l| format!(":{l}"))
                    .collect::<Vec<_>>()
                    .join("")
            ),
            Fra::ScanEdges {
                src, dst, types, ..
            } => format!(
                "⇑[({src})-[{}]->({dst})]",
                types
                    .iter()
                    .map(|t| format!(":{t}"))
                    .collect::<Vec<_>>()
                    .join("|")
            ),
            Fra::HashJoin { left_keys, .. } => format!("⋈ on {} key(s)", left_keys.len()),
            Fra::SemiJoin { anti: true, .. } => "▷ antijoin".into(),
            Fra::SemiJoin { .. } => "⋉ semijoin".into(),
            Fra::VarLengthJoin { spec, .. } => format!(
                "⋈* [{}{}..{}]",
                spec.types
                    .iter()
                    .map(|t| format!(":{t}"))
                    .collect::<Vec<_>>()
                    .join("|"),
                spec.min,
                spec.max.map_or("∞".into(), |m| m.to_string())
            ),
            Fra::Filter { .. } => "σ".into(),
            Fra::Project { items, .. } => format!("π ({} cols)", items.len()),
            Fra::Distinct { .. } => "δ".into(),
            Fra::Aggregate { group, aggs, .. } => {
                format!("γ ({} groups, {} aggs)", group.len(), aggs.len())
            }
            Fra::Unwind { alias, .. } => format!("ω {alias}"),
            Fra::MultiwayJoin { inputs, names, .. } => format!(
                "⨝ⁿ wcoj ({} rels; order: {})",
                inputs.len(),
                names.join(" → ")
            ),
        }
    };
    let _ = writeln!(out, "{pad}{:<40} ~{:.0} rows", describe(fra), card.max(0.0));
    if let Fra::MultiwayJoin {
        inputs,
        var_of,
        names,
    } = fra
    {
        // Per-variable distinct estimates — the numbers that chose the
        // elimination order.
        for (v, name) in names.iter().enumerate() {
            let mut d = f64::INFINITY;
            for (i, inp) in inputs.iter().enumerate() {
                let rel = analyze(inp, stats);
                for (c, &vc) in var_of[i].iter().enumerate() {
                    if vc == v {
                        let dc = rel
                            .cols
                            .get(c)
                            .map_or(rel.card.sqrt(), |ci| ci.distinct(rel.card, stats));
                        d = d.min(dc);
                    }
                }
            }
            let _ = writeln!(
                out,
                "{pad}  · var {v} ({name}): ~{:.0} distinct",
                if d.is_finite() { d } else { 0.0 }
            );
        }
    }
    match fra {
        Fra::HashJoin { left, right, .. } | Fra::SemiJoin { left, right, .. } => {
            render(left, stats, depth + 1, out);
            render(right, stats, depth + 1, out);
        }
        Fra::VarLengthJoin { left, .. } => render(left, stats, depth + 1, out),
        Fra::Filter { input, .. }
        | Fra::Project { input, .. }
        | Fra::Distinct { input }
        | Fra::Aggregate { input, .. }
        | Fra::Unwind { input, .. } => render(input, stats, depth + 1, out),
        Fra::MultiwayJoin { inputs, .. } => {
            for i in inputs {
                render(i, stats, depth + 1, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fra::PropPush;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    fn stats() -> PlanStats {
        let mut st = PlanStats {
            vertices: 10_000,
            edges: 60_000,
            ..PlanStats::default()
        };
        st.label_counts.insert(s("User"), 5_000);
        st.label_counts.insert(s("Post"), 4_000);
        st.label_counts.insert(s("Topic"), 50);
        st.type_counts.insert(s("FOLLOWS"), 40_000);
        st.type_counts.insert(s("LIKES"), 15_000);
        st.type_counts.insert(s("TAGGED"), 4_000);
        st.type_distinct_src.insert(s("FOLLOWS"), 5_000);
        st.type_distinct_dst.insert(s("FOLLOWS"), 40);
        st.type_distinct_src.insert(s("LIKES"), 40);
        st.type_distinct_dst.insert(s("LIKES"), 4_000);
        st.type_distinct_src.insert(s("TAGGED"), 4_000);
        st.type_distinct_dst.insert(s("TAGGED"), 50);
        st.vertex_prop_distinct.insert(s("name"), 50);
        st
    }

    fn edge_scan(ty: &str, src: &str, edge: &str, dst: &str) -> Fra {
        Fra::ScanEdges {
            src: src.into(),
            edge: edge.into(),
            dst: dst.into(),
            types: vec![s(ty)],
            src_labels: vec![],
            dst_labels: vec![],
            src_props: vec![],
            edge_props: vec![],
            dst_props: vec![],
            dir: pgq_common::dir::Direction::Out,
            carry_maps: (false, false, false),
        }
    }

    /// (a)-[:FOLLOWS]->(b), (b)-[:LIKES]->(p), (p)-[:TAGGED]->(t {name}),
    /// σ t.name = 'rare' — written in the worst order.
    fn skewed_plan() -> Fra {
        let tagged = Fra::ScanEdges {
            src: "p".into(),
            edge: "e3".into(),
            dst: "t".into(),
            types: vec![s("TAGGED")],
            src_labels: vec![],
            dst_labels: vec![s("Topic")],
            src_props: vec![],
            edge_props: vec![],
            dst_props: vec![PropPush {
                prop: s("name"),
                col: "t.name".into(),
            }],
            dir: pgq_common::dir::Direction::Out,
            carry_maps: (false, false, false),
        };
        let j1 = Fra::HashJoin {
            left: Box::new(edge_scan("FOLLOWS", "a", "e1", "b")),
            right: Box::new(edge_scan("LIKES", "b", "e2", "p")),
            left_keys: vec![2],
            right_keys: vec![0],
        };
        let j2 = Fra::HashJoin {
            left: Box::new(j1),
            right: Box::new(tagged),
            left_keys: vec![4],
            right_keys: vec![0],
        };
        Fra::Filter {
            predicate: ScalarExpr::Binary(
                BinOp::Eq,
                Box::new(ScalarExpr::Col(7)),
                Box::new(ScalarExpr::Lit(Value::str("rare"))),
            ),
            input: Box::new(j2),
        }
    }

    #[test]
    fn plan_preserves_schema() {
        let p = skewed_plan();
        let planned = plan(&p, &stats());
        assert_eq!(planned.fra.schema(), p.schema());
    }

    #[test]
    fn planner_reorders_skewed_join_tree() {
        let p = skewed_plan();
        let planned = plan(&p, &stats());
        assert!(planned.changed, "skewed plan should be reordered");
        // The FOLLOWS scan (the huge fan-out relation) must join LAST:
        // the top join of the planned tree has FOLLOWS on one side and
        // the (LIKES ⋈ σTAGGED) subtree on the other.
        fn top_join_sides(f: &Fra) -> Option<(&Fra, &Fra)> {
            match f {
                Fra::HashJoin { left, right, .. } => Some((left, right)),
                Fra::Filter { input, .. } | Fra::Project { input, .. } => top_join_sides(input),
                _ => None,
            }
        }
        fn contains_type(f: &Fra, ty: &str) -> bool {
            match f {
                Fra::ScanEdges { types, .. } => types.contains(&Symbol::intern(ty)),
                Fra::HashJoin { left, right, .. } => {
                    contains_type(left, ty) || contains_type(right, ty)
                }
                Fra::Filter { input, .. } | Fra::Project { input, .. } => contains_type(input, ty),
                _ => false,
            }
        }
        let (l, r) = top_join_sides(&planned.fra).expect("planned tree has a join");
        let follows_alone = (contains_type(l, "FOLLOWS") && !contains_type(l, "TAGGED"))
            || (contains_type(r, "FOLLOWS") && !contains_type(r, "TAGGED"));
        assert!(
            follows_alone,
            "FOLLOWS must be joined last:\n{}",
            planned.fra.explain()
        );
    }

    #[test]
    fn no_stats_keeps_syntactic_order() {
        // With an empty catalog every unit estimates alike; ties resolve
        // to the syntactic order, so nothing changes.
        let p = skewed_plan();
        let planned = plan(&p, &PlanStats::default());
        assert_eq!(planned.fra.schema(), p.schema());
    }

    #[test]
    fn two_relation_join_is_untouched() {
        let j = Fra::HashJoin {
            left: Box::new(edge_scan("FOLLOWS", "a", "e1", "b")),
            right: Box::new(edge_scan("LIKES", "b", "e2", "p")),
            left_keys: vec![2],
            right_keys: vec![0],
        };
        let planned = plan(&j, &stats());
        assert_eq!(planned.fra, j, "a single binary join keeps its shape");
        assert!(!planned.changed);
    }

    #[test]
    fn single_factor_filter_region_is_untouched() {
        let f = Fra::Filter {
            input: Box::new(Fra::ScanVertices {
                var: "t".into(),
                labels: vec![s("Topic")],
                props: vec![PropPush {
                    prop: s("name"),
                    col: "t.name".into(),
                }],
                carry_map: false,
            }),
            predicate: ScalarExpr::Binary(
                BinOp::Eq,
                Box::new(ScalarExpr::Col(1)),
                Box::new(ScalarExpr::Lit(Value::str("rare"))),
            ),
        };
        let planned = plan(&f, &stats());
        assert_eq!(planned.fra, f);
        assert!(!planned.changed);
    }

    #[test]
    fn single_side_filter_is_pushed_below_the_join() {
        // σ[t.name = 'rare'] above the join must move onto the TAGGED
        // factor when the region is rebuilt.
        let planned = plan(&skewed_plan(), &stats());
        fn filter_directly_over_scan(f: &Fra) -> bool {
            match f {
                Fra::Filter { input, .. } => matches!(input.as_ref(), Fra::ScanEdges { .. }),
                Fra::HashJoin { left, right, .. } => {
                    filter_directly_over_scan(left) || filter_directly_over_scan(right)
                }
                Fra::Project { input, .. } => filter_directly_over_scan(input),
                _ => false,
            }
        }
        assert!(
            filter_directly_over_scan(&planned.fra),
            "{}",
            planned.fra.explain()
        );
    }

    #[test]
    fn explain_reports_estimates() {
        let text = explain_with_estimates(&skewed_plan(), &stats());
        assert!(text.contains("~"), "{text}");
        assert!(text.contains("⋈"), "{text}");
    }

    #[test]
    fn varlength_region_rebuild_preserves_shape_and_schema() {
        let vlj = Fra::VarLengthJoin {
            left: Box::new(Fra::ScanVertices {
                var: "p".into(),
                labels: vec![s("Post")],
                props: vec![],
                carry_map: false,
            }),
            src_col: 0,
            spec: VarLenSpec {
                types: vec![s("REPLY")],
                dir: pgq_common::dir::Direction::Out,
                dst_labels: vec![s("Comm")],
                dst_props: vec![PropPush {
                    prop: s("lang"),
                    col: "c.lang".into(),
                }],
                dst_carry_map: false,
                edge_prop_filters: vec![],
                min: 1,
                max: None,
            },
            dst: "c".into(),
            path: "t".into(),
        };
        let filtered = Fra::Filter {
            predicate: ScalarExpr::Binary(
                BinOp::Eq,
                Box::new(ScalarExpr::Col(2)),
                Box::new(ScalarExpr::Lit(Value::str("en"))),
            ),
            input: Box::new(vlj.clone()),
        };
        let planned = plan(&filtered, &stats());
        assert_eq!(planned.fra.schema(), filtered.schema());
        // Single factor + single expansion: the shape is unchanged.
        assert_eq!(planned.fra, filtered);
    }
}
