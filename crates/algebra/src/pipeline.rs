//! The full compilation pipeline: openCypher AST → GRA → NRA → FRA, plus
//! the maintainability verdict.

use std::collections::HashMap;

use pgq_parser::ast::{Expr, Query};

use crate::compile::{split_aggregates, Compiler};
use crate::error::AlgebraError;
use crate::expr::ScalarExpr;
use crate::flatten::{flatten, SchemaMode};
use crate::fra::Fra;
use crate::gra::{Gra, VarKind};
use crate::nra::Nra;
use crate::to_nra::to_nra;

/// Compilation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileOptions {
    /// Schema-inference mode (the paper's push-down vs the carry-maps
    /// ablation).
    pub schema_mode: SchemaMode,
    /// Run the FRA optimiser ([`crate::opt`]) — off by default so that
    /// EXPLAIN and the golden tests show the paper's unoptimised
    /// pipeline.
    pub optimize: bool,
}

impl CompileOptions {
    /// Options with the optimiser enabled.
    pub fn optimized() -> CompileOptions {
        CompileOptions {
            optimize: true,
            ..CompileOptions::default()
        }
    }
}

/// A fully compiled read query, carrying all three pipeline stages (for
/// EXPLAIN and the golden-text experiments) and the executable FRA plan.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// Stage-1 graph relational algebra.
    pub gra: Gra,
    /// Stage-2 nested relational algebra.
    pub nra: Nra,
    /// Stage-3 flat relational algebra (executable).
    pub fra: Fra,
    /// Output column names.
    pub columns: Vec<String>,
    /// Kind of each query variable.
    pub kinds: HashMap<String, VarKind>,
    /// `ORDER BY` keys over the *output* columns (baseline evaluator
    /// only; makes the view non-maintainable).
    pub order_by: Vec<(ScalarExpr, bool)>,
    /// `SKIP` count.
    pub skip: Option<usize>,
    /// `LIMIT` count.
    pub limit: Option<usize>,
    /// Reasons this query is not incrementally maintainable (empty =
    /// maintainable; the paper's fragment check).
    pub not_maintainable: Vec<String>,
}

impl CompiledQuery {
    /// Is the query inside the incrementally maintainable fragment?
    pub fn is_maintainable(&self) -> bool {
        self.not_maintainable.is_empty()
    }

    /// Run the cost-based planner over this query's FRA under `stats`
    /// and render the chosen plan with estimated cardinalities per
    /// operator — the programmatic `EXPLAIN` (the engine and shell wrap
    /// this with a statistics snapshot of the live graph).
    pub fn explain_plan(&self, stats: &crate::plan::PlanStats) -> String {
        self.explain_plan_with(stats, &crate::plan::PlanOptions::default())
    }

    /// [`CompiledQuery::explain_plan`] with explicit [`PlanOptions`], so
    /// callers honouring the `PGQ_DISABLE_WCOJ` kill-switch can show the
    /// plan that will actually run.
    ///
    /// [`PlanOptions`]: crate::plan::PlanOptions
    pub fn explain_plan_with(
        &self,
        stats: &crate::plan::PlanStats,
        opts: &crate::plan::PlanOptions,
    ) -> String {
        let (planned, report) = crate::plan::plan_with_report(&self.fra, stats, opts);
        let mut out = String::new();
        out.push_str(if planned.changed {
            "planner: reordered the plan (estimated cardinalities below)\n"
        } else {
            "planner: kept the syntactic order (estimated cardinalities below)\n"
        });
        if opts.wcoj == crate::plan::WcojMode::Disabled {
            out.push_str(
                "wcoj: disabled (PGQ_DISABLE_WCOJ); cyclic regions use binary join trees\n",
            );
        }
        for d in &report.fuse_decisions {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&crate::plan::explain_with_estimates(&planned.fra, stats));
        out
    }
}

/// Compile a read-only query through all three stages.
pub fn compile_query(query: &Query) -> Result<CompiledQuery, AlgebraError> {
    compile_query_with(query, CompileOptions::default())
}

/// Compile with explicit options.
pub fn compile_query_with(
    query: &Query,
    options: CompileOptions,
) -> Result<CompiledQuery, AlgebraError> {
    if query.is_update() {
        return Err(AlgebraError::InvalidQuery(
            "data-modification query; use the engine's execute() instead of a view".into(),
        ));
    }
    let ret = query
        .return_clause()
        .ok_or_else(|| AlgebraError::InvalidQuery("query has no RETURN clause".into()))?
        .clone();

    let mut compiler = Compiler::default();
    let plan = compiler.compile_reading(query)?;

    // Build the RETURN part of the GRA tree.
    let mut gra = match split_aggregates(&ret)? {
        Some((group, aggs)) => {
            let agg = Gra::Aggregate {
                input: Box::new(plan.body.clone()),
                group: group.clone(),
                aggs: aggs.clone(),
            };
            // Aggregate schema is group ++ aggs; restore RETURN order.
            let agg_schema: Vec<String> = group
                .iter()
                .map(|(_, n)| n.clone())
                .chain(aggs.iter().map(|(_, n)| n.clone()))
                .collect();
            let return_names: Vec<String> = ret.items.iter().map(|i| i.name()).collect();
            if agg_schema == return_names {
                agg
            } else {
                Gra::Project {
                    input: Box::new(agg),
                    items: return_names
                        .iter()
                        .map(|n| (Expr::Variable(n.clone()), n.clone()))
                        .collect(),
                }
            }
        }
        None => Gra::Project {
            input: Box::new(plan.body.clone()),
            items: ret
                .items
                .iter()
                .map(|i| (i.expr.clone(), i.name()))
                .collect(),
        },
    };
    if ret.distinct {
        gra = Gra::Distinct {
            input: Box::new(gra),
        };
    }

    let nra = to_nra(&gra, &plan.kinds)?;
    let mut fra = flatten(&nra, &plan.kinds, options.schema_mode)?;
    if options.optimize {
        fra = crate::opt::optimize(fra);
    }
    let columns = fra.schema();

    // ORDER BY / SKIP / LIMIT: parsed and resolved for the baseline
    // evaluator, recorded as non-maintainability reasons (the paper's
    // explicit trade-off: no ordering, no top-k).
    let mut not_maintainable = Vec::new();
    let mut order_by = Vec::new();
    if !ret.order_by.is_empty() {
        not_maintainable.push("ORDER BY requires maintained ordering (ORD)".to_string());
        for (e, asc) in &ret.order_by {
            let resolved = resolve_over_output(e, &columns)?;
            order_by.push((resolved, *asc));
        }
    }
    let skip = match &ret.skip {
        None => None,
        Some(e) => {
            not_maintainable.push("SKIP requires maintained ordering".to_string());
            Some(usize_literal(e, "SKIP")?)
        }
    };
    let limit = match &ret.limit {
        None => None,
        Some(e) => {
            not_maintainable.push("LIMIT is a top-k construct".to_string());
            Some(usize_literal(e, "LIMIT")?)
        }
    };

    Ok(CompiledQuery {
        gra,
        nra,
        fra,
        columns,
        kinds: plan.kinds,
        order_by,
        skip,
        limit,
        not_maintainable,
    })
}

/// Compile the *reading* part of a (possibly updating) query and project
/// the given items — used by the engine to bind update clauses. Items may
/// be plain variables or arbitrary expressions over the matched pattern
/// (e.g. the right-hand side of a `SET`).
pub fn compile_bindings(
    query: &Query,
    items: &[(Expr, String)],
) -> Result<CompiledQuery, AlgebraError> {
    let mut compiler = Compiler::default();
    let plan = compiler.compile_reading(query)?;
    for (e, _) in items {
        for v in e.free_variables() {
            if !plan.kinds.contains_key(&v) {
                return Err(AlgebraError::UnknownVariable(v));
            }
        }
    }
    let gra = Gra::Project {
        input: Box::new(plan.body.clone()),
        items: items.to_vec(),
    };
    let nra = to_nra(&gra, &plan.kinds)?;
    let fra = flatten(&nra, &plan.kinds, SchemaMode::Inferred)?;
    let columns = fra.schema();
    Ok(CompiledQuery {
        gra,
        nra,
        fra,
        columns,
        kinds: plan.kinds,
        order_by: Vec::new(),
        skip: None,
        limit: None,
        not_maintainable: Vec::new(),
    })
}

fn usize_literal(e: &Expr, what: &str) -> Result<usize, AlgebraError> {
    match e {
        Expr::Literal(pgq_common::value::Value::Int(n)) if *n >= 0 => Ok(*n as usize),
        _ => Err(AlgebraError::Unsupported(format!(
            "{what} must be a non-negative integer literal"
        ))),
    }
}

/// Resolve an ORDER BY expression against the output schema (aliases and
/// returned column names only).
fn resolve_over_output(e: &Expr, columns: &[String]) -> Result<ScalarExpr, AlgebraError> {
    // Reuse the flatten resolver with a context that has no kinds: output
    // columns behave like plain value variables.
    struct Shim;
    // Minimal local resolver to avoid exposing flatten internals.
    fn go(e: &Expr, columns: &[String]) -> Result<ScalarExpr, AlgebraError> {
        Ok(match e {
            Expr::Literal(v) => ScalarExpr::Lit(v.clone()),
            Expr::Variable(name) => {
                ScalarExpr::Col(columns.iter().position(|c| c == name).ok_or_else(|| {
                    AlgebraError::Unsupported(format!(
                        "ORDER BY expression references `{name}`, which is not a \
                             returned column"
                    ))
                })?)
            }
            Expr::Property(base, key) => {
                // Allow `alias.prop` only when the *textual* name is a
                // returned column (e.g. RETURN n.len ... ORDER BY n.len).
                let text = format!("{}.{key}", base);
                if let Some(i) = columns.iter().position(|c| c == &text) {
                    ScalarExpr::Col(i)
                } else {
                    return Err(AlgebraError::Unsupported(format!(
                        "ORDER BY expression `{text}` is not a returned column"
                    )));
                }
            }
            Expr::Binary(op, l, r) => {
                ScalarExpr::Binary(*op, Box::new(go(l, columns)?), Box::new(go(r, columns)?))
            }
            Expr::Unary(op, x) => ScalarExpr::Unary(*op, Box::new(go(x, columns)?)),
            Expr::Function {
                name,
                distinct: false,
                args,
            } => ScalarExpr::Func {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| go(a, columns))
                    .collect::<Result<_, _>>()?,
            },
            other => {
                return Err(AlgebraError::Unsupported(format!(
                    "ORDER BY expression {other} is not supported"
                )))
            }
        })
    }
    let _ = Shim;
    go(e, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_parser::parse_query;

    fn compile(src: &str) -> CompiledQuery {
        compile_query(&parse_query(src).unwrap()).unwrap()
    }

    #[test]
    fn running_example_compiles_end_to_end() {
        let cq =
            compile("MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t");
        assert_eq!(cq.columns, vec!["p".to_string(), "t".to_string()]);
        assert!(cq.is_maintainable());
        // FRA must contain a variable-length join and two pushed props.
        fn has_varlen(f: &Fra) -> bool {
            match f {
                Fra::VarLengthJoin { .. } => true,
                Fra::HashJoin { left, right, .. } => has_varlen(left) || has_varlen(right),
                Fra::Filter { input, .. }
                | Fra::Project { input, .. }
                | Fra::Distinct { input }
                | Fra::Aggregate { input, .. }
                | Fra::Unwind { input, .. } => has_varlen(input),
                _ => false,
            }
        }
        assert!(has_varlen(&cq.fra));
    }

    #[test]
    fn push_down_reaches_the_scan() {
        let cq = compile("MATCH (p:Post) WHERE p.lang = 'en' RETURN p");
        fn scan_props(f: &Fra) -> Vec<String> {
            match f {
                Fra::ScanVertices { props, .. } => props.iter().map(|p| p.col.clone()).collect(),
                Fra::HashJoin { left, right, .. } => {
                    let mut v = scan_props(left);
                    v.extend(scan_props(right));
                    v
                }
                Fra::Filter { input, .. }
                | Fra::Project { input, .. }
                | Fra::Distinct { input }
                | Fra::Aggregate { input, .. }
                | Fra::Unwind { input, .. } => scan_props(input),
                Fra::VarLengthJoin { left, .. } => scan_props(left),
                _ => vec![],
            }
        }
        assert_eq!(scan_props(&cq.fra), vec!["p.lang".to_string()]);
    }

    #[test]
    fn carry_maps_mode_keeps_scans_narrow_of_props() {
        let q = parse_query("MATCH (p:Post) WHERE p.lang = 'en' RETURN p").unwrap();
        let cq = compile_query_with(
            &q,
            CompileOptions {
                schema_mode: SchemaMode::CarryMaps,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        fn has_carry(f: &Fra) -> bool {
            match f {
                Fra::ScanVertices { carry_map, .. } => *carry_map,
                Fra::HashJoin { left, right, .. } => has_carry(left) || has_carry(right),
                Fra::Filter { input, .. }
                | Fra::Project { input, .. }
                | Fra::Distinct { input }
                | Fra::Aggregate { input, .. }
                | Fra::Unwind { input, .. } => has_carry(input),
                Fra::VarLengthJoin { left, .. } => has_carry(left),
                _ => false,
            }
        }
        assert!(has_carry(&cq.fra));
    }

    #[test]
    fn order_by_marks_not_maintainable() {
        let cq = compile("MATCH (n:Post) RETURN n.lang AS l ORDER BY l LIMIT 3");
        assert!(!cq.is_maintainable());
        assert_eq!(cq.not_maintainable.len(), 2);
        assert_eq!(cq.limit, Some(3));
    }

    #[test]
    fn order_by_unreturned_column_rejected() {
        let q = parse_query("MATCH (n:Post) RETURN n.lang AS l ORDER BY n.score").unwrap();
        assert!(compile_query(&q).is_err());
    }

    #[test]
    fn aggregates_compile() {
        let cq = compile("MATCH (n:Post) RETURN n.lang AS l, count(*) AS c");
        assert_eq!(cq.columns, vec!["l".to_string(), "c".to_string()]);
        assert!(cq.is_maintainable());
    }

    #[test]
    fn aggregate_return_order_restored() {
        let cq = compile("MATCH (n:Post) RETURN count(*) AS c, n.lang AS l");
        assert_eq!(cq.columns, vec!["c".to_string(), "l".to_string()]);
    }

    #[test]
    fn update_query_rejected_for_views() {
        let q = parse_query("CREATE (n:Post)").unwrap();
        assert!(matches!(
            compile_query(&q),
            Err(AlgebraError::InvalidQuery(_))
        ));
    }

    #[test]
    fn missing_return_rejected() {
        let q = parse_query("MATCH (n:Post) SET n.x = 1").unwrap();
        assert!(compile_query(&q).is_err());
    }

    #[test]
    fn compile_bindings_projects_requested_vars() {
        let q = parse_query("MATCH (n:Post)-[r:REPLY]->(m) SET n.x = 1").unwrap();
        let items = vec![
            (Expr::Variable("n".into()), "n".to_string()),
            (Expr::Variable("r".into()), "r".to_string()),
        ];
        let cq = compile_bindings(&q, &items).unwrap();
        assert_eq!(cq.columns, vec!["n".to_string(), "r".to_string()]);
    }

    #[test]
    fn compile_bindings_rejects_unknown_vars() {
        let q = parse_query("MATCH (n:Post) SET n.x = 1").unwrap();
        let items = vec![(Expr::Variable("zz".into()), "zz".to_string())];
        assert!(matches!(
            compile_bindings(&q, &items),
            Err(AlgebraError::UnknownVariable(_))
        ));
    }

    #[test]
    fn unwind_path_nodes_with_props() {
        // Property access on an UNWIND alias forces an auxiliary scan join.
        let cq =
            compile("MATCH t = (a:Post)-[:REPLY*]->(b:Comm) UNWIND nodes(t) AS n RETURN n.lang");
        assert_eq!(cq.columns, vec!["n.lang".to_string()]);
    }

    #[test]
    fn distinct_produces_distinct_node() {
        let cq = compile("MATCH (n:Post) RETURN DISTINCT n.lang");
        assert!(matches!(cq.fra, Fra::Distinct { .. }));
    }
}
