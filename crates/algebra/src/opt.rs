//! FRA optimisation passes.
//!
//! The paper's pipeline stops at a *correct* FRA plan; this module adds
//! the classic algebraic clean-ups an engine would apply before building
//! the dataflow network:
//!
//! * **constant folding** of scalar expressions;
//! * **filter fusion** (σ∘σ → σ∧);
//! * **filter push-down** through projections, joins, distinct and
//!   unwind — pushing predicates closer to the base scans so the IVM
//!   network filters deltas before they hit join memories;
//! * **identity-projection elimination**.
//!
//! Optimisation is *optional* (off by default) so that the golden tests
//! of experiments E2–E4 keep pinning the paper's unoptimised pipeline;
//! the engine and benchmarks opt in via
//! [`crate::pipeline::CompileOptions::optimize`].

use pgq_common::tuple::Tuple;
use pgq_parser::ast::BinOp;

use crate::expr::ScalarExpr;
use crate::fra::Fra;

/// Optimise a plan. The result computes the same bag for every graph.
pub fn optimize(fra: Fra) -> Fra {
    // Two passes reach a fixpoint for the rewrites implemented here
    // (push-down may expose new fusion opportunities).
    let once = rewrite(fra);
    rewrite(once)
}

fn rewrite(fra: Fra) -> Fra {
    match fra {
        Fra::Filter { input, predicate } => {
            let input = rewrite(*input);
            let predicate = fold(predicate);
            match predicate {
                // σ[true] is a no-op.
                ScalarExpr::Lit(pgq_common::value::Value::Bool(true)) => input,
                predicate => push_filter(predicate, input),
            }
        }
        Fra::Project { input, items } => {
            let input = rewrite(*input);
            let items: Vec<(ScalarExpr, String)> =
                items.into_iter().map(|(e, n)| (fold(e), n)).collect();
            if is_identity(&items, &input) {
                input
            } else {
                Fra::Project {
                    input: Box::new(input),
                    items,
                }
            }
        }
        Fra::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => Fra::HashJoin {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            left_keys,
            right_keys,
        },
        Fra::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
            anti,
        } => Fra::SemiJoin {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            left_keys,
            right_keys,
            anti,
        },
        Fra::VarLengthJoin {
            left,
            src_col,
            spec,
            dst,
            path,
        } => Fra::VarLengthJoin {
            left: Box::new(rewrite(*left)),
            src_col,
            spec,
            dst,
            path,
        },
        Fra::Distinct { input } => Fra::Distinct {
            input: Box::new(rewrite(*input)),
        },
        Fra::Aggregate { input, group, aggs } => Fra::Aggregate {
            input: Box::new(rewrite(*input)),
            group: group.into_iter().map(|(e, n)| (fold(e), n)).collect(),
            aggs,
        },
        Fra::Unwind { input, expr, alias } => Fra::Unwind {
            input: Box::new(rewrite(*input)),
            expr: fold(expr),
            alias,
        },
        Fra::MultiwayJoin {
            inputs,
            var_of,
            names,
        } => Fra::MultiwayJoin {
            inputs: inputs.into_iter().map(rewrite).collect(),
            var_of,
            names,
        },
        leaf @ (Fra::Unit | Fra::ScanVertices { .. } | Fra::ScanEdges { .. }) => leaf,
    }
}

/// Push `predicate` as deep as possible above/into `input`.
fn push_filter(predicate: ScalarExpr, input: Fra) -> Fra {
    match input {
        // σ p (σ q (x)) → σ (p ∧ q) (x), then retry as one predicate.
        Fra::Filter {
            input: inner,
            predicate: q,
        } => push_filter(
            fold(ScalarExpr::Binary(
                BinOp::And,
                Box::new(q),
                Box::new(predicate),
            )),
            *inner,
        ),
        // σ p (π items (x)) → π items (σ p[items] (x)).
        Fra::Project {
            input: inner,
            items,
        } => {
            let substituted = predicate.substitute(&items);
            let pushed = push_filter(fold(substituted), *inner);
            Fra::Project {
                input: Box::new(pushed),
                items,
            }
        }
        // σ (δ x) → δ (σ x).
        Fra::Distinct { input: inner } => Fra::Distinct {
            input: Box::new(push_filter(predicate, *inner)),
        },
        // Split conjuncts over a join: left-only ones go left, right-only
        // ones go right (remapped), the rest stays above.
        Fra::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let left_arity = left.schema().len();
            let right_schema = right.schema();
            // Output position → right-side position for non-key columns.
            let mut out_to_right: Vec<Option<usize>> = vec![None; left_arity];
            for (ri, _) in right_schema.iter().enumerate() {
                if !right_keys.contains(&ri) {
                    out_to_right.push(Some(ri));
                }
            }
            let mut stay = Vec::new();
            let mut push_left = Vec::new();
            let mut push_right = Vec::new();
            for conj in conjuncts(predicate) {
                let cols = conj.columns();
                if cols.iter().all(|&c| c < left_arity) {
                    push_left.push(conj);
                } else if cols
                    .iter()
                    .all(|&c| out_to_right.get(c).copied().flatten().is_some())
                {
                    let remapped =
                        conj.remap_columns(&|c| out_to_right[c].expect("checked right-only"));
                    push_right.push(remapped);
                } else {
                    stay.push(conj);
                }
            }
            let mut l = rewrite(*left);
            if let Some(p) = conjoin(push_left) {
                l = push_filter(p, l);
            }
            let mut r = rewrite(*right);
            if let Some(p) = conjoin(push_right) {
                r = push_filter(p, r);
            }
            let join = Fra::HashJoin {
                left: Box::new(l),
                right: Box::new(r),
                left_keys,
                right_keys,
            };
            match conjoin(stay) {
                Some(p) => Fra::Filter {
                    input: Box::new(join),
                    predicate: p,
                },
                None => join,
            }
        }
        // σ(L ⋉ R) = σ(L) ⋉ R — the whole predicate moves to the left.
        Fra::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
            anti,
        } => Fra::SemiJoin {
            left: Box::new(push_filter(predicate, *left)),
            right: Box::new(rewrite(*right)),
            left_keys,
            right_keys,
            anti,
        },
        // Conjuncts over the left columns of ⋈* go below it.
        Fra::VarLengthJoin {
            left,
            src_col,
            spec,
            dst,
            path,
        } => {
            let left_arity = left.schema().len();
            let mut stay = Vec::new();
            let mut below = Vec::new();
            for conj in conjuncts(predicate) {
                if conj.columns().iter().all(|&c| c < left_arity) {
                    below.push(conj);
                } else {
                    stay.push(conj);
                }
            }
            let mut l = rewrite(*left);
            if let Some(p) = conjoin(below) {
                l = push_filter(p, l);
            }
            let vlj = Fra::VarLengthJoin {
                left: Box::new(l),
                src_col,
                spec,
                dst,
                path,
            };
            match conjoin(stay) {
                Some(p) => Fra::Filter {
                    input: Box::new(vlj),
                    predicate: p,
                },
                None => vlj,
            }
        }
        // Conjuncts not touching the unwound column go below ω.
        Fra::Unwind {
            input: inner,
            expr,
            alias,
        } => {
            let inner_arity = inner.schema().len();
            let mut stay = Vec::new();
            let mut below = Vec::new();
            for conj in conjuncts(predicate) {
                if conj.columns().iter().all(|&c| c < inner_arity) {
                    below.push(conj);
                } else {
                    stay.push(conj);
                }
            }
            let mut i = rewrite(*inner);
            if let Some(p) = conjoin(below) {
                i = push_filter(p, i);
            }
            let unwound = Fra::Unwind {
                input: Box::new(i),
                expr,
                alias,
            };
            match conjoin(stay) {
                Some(p) => Fra::Filter {
                    input: Box::new(unwound),
                    predicate: p,
                },
                None => unwound,
            }
        }
        other => Fra::Filter {
            input: Box::new(rewrite(other)),
            predicate,
        },
    }
}

/// Split a predicate into AND-conjuncts.
fn conjuncts(e: ScalarExpr) -> Vec<ScalarExpr> {
    match e {
        ScalarExpr::Binary(BinOp::And, l, r) => {
            let mut out = conjuncts(*l);
            out.extend(conjuncts(*r));
            out
        }
        other => vec![other],
    }
}

fn conjoin(preds: Vec<ScalarExpr>) -> Option<ScalarExpr> {
    preds
        .into_iter()
        .reduce(|a, b| ScalarExpr::Binary(BinOp::And, Box::new(a), Box::new(b)))
}

/// Is this projection the identity over its input?
fn is_identity(items: &[(ScalarExpr, String)], input: &Fra) -> bool {
    let schema = input.schema();
    items.len() == schema.len()
        && items
            .iter()
            .enumerate()
            .all(|(i, (e, name))| matches!(e, ScalarExpr::Col(c) if *c == i) && name == &schema[i])
}

/// Fold constant subexpressions (and simplify boolean identities).
pub fn fold(e: ScalarExpr) -> ScalarExpr {
    use pgq_common::value::Value;
    let e = match e {
        ScalarExpr::Binary(op, l, r) => {
            ScalarExpr::Binary(op, Box::new(fold(*l)), Box::new(fold(*r)))
        }
        ScalarExpr::Unary(op, x) => ScalarExpr::Unary(op, Box::new(fold(*x))),
        ScalarExpr::Func { name, args } => ScalarExpr::Func {
            name,
            args: args.into_iter().map(fold).collect(),
        },
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(fold(*expr)),
            negated,
        },
        ScalarExpr::List(xs) => ScalarExpr::List(xs.into_iter().map(fold).collect()),
        ScalarExpr::Map(entries) => {
            ScalarExpr::Map(entries.into_iter().map(|(k, v)| (k, fold(v))).collect())
        }
        ScalarExpr::Index(b, i) => ScalarExpr::Index(Box::new(fold(*b)), Box::new(fold(*i))),
        other => other,
    };
    // Boolean identities.
    if let ScalarExpr::Binary(op, l, r) = &e {
        let tru = ScalarExpr::Lit(Value::Bool(true));
        let fal = ScalarExpr::Lit(Value::Bool(false));
        match op {
            BinOp::And => {
                if **l == tru {
                    return r.as_ref().clone();
                }
                if **r == tru {
                    return l.as_ref().clone();
                }
                if **l == fal || **r == fal {
                    return fal;
                }
            }
            BinOp::Or => {
                if **l == fal {
                    return r.as_ref().clone();
                }
                if **r == fal {
                    return l.as_ref().clone();
                }
                if **l == tru || **r == tru {
                    return tru;
                }
            }
            _ => {}
        }
    }
    // Full constant evaluation when no columns are referenced.
    if e.columns().is_empty() && !matches!(e, ScalarExpr::Lit(_)) {
        if let Ok(v) = e.eval(&Tuple::unit()) {
            return ScalarExpr::Lit(v);
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile_query_with, CompileOptions};
    use pgq_common::value::Value;
    use pgq_parser::parse_query;

    fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Lit(v.into())
    }

    #[test]
    fn folds_arithmetic_constants() {
        let e = ScalarExpr::Binary(BinOp::Add, Box::new(lit(2)), Box::new(lit(3)));
        assert_eq!(fold(e), lit(5));
    }

    #[test]
    fn folds_boolean_identities() {
        let c = ScalarExpr::Col(0);
        let e = ScalarExpr::Binary(BinOp::And, Box::new(lit(true)), Box::new(c.clone()));
        assert_eq!(fold(e), c);
        let e = ScalarExpr::Binary(BinOp::Or, Box::new(lit(true)), Box::new(ScalarExpr::Col(1)));
        assert_eq!(fold(e), lit(true));
    }

    #[test]
    fn does_not_fold_column_expressions() {
        let e = ScalarExpr::Binary(BinOp::Add, Box::new(ScalarExpr::Col(0)), Box::new(lit(1)));
        assert_eq!(fold(e.clone()), e);
    }

    fn compile_opt(q: &str) -> crate::fra::Fra {
        let cq = compile_query_with(&parse_query(q).unwrap(), CompileOptions::default()).unwrap();
        optimize(cq.fra)
    }

    fn count_filters_above_joins(f: &crate::fra::Fra) -> (usize, usize) {
        // (filters directly above scans, filters elsewhere)
        fn walk(f: &crate::fra::Fra, at_scan: &mut usize, other: &mut usize) {
            use crate::fra::Fra::*;
            match f {
                Filter { input, .. } => {
                    match input.as_ref() {
                        ScanVertices { .. } | ScanEdges { .. } => *at_scan += 1,
                        _ => *other += 1,
                    }
                    walk(input, at_scan, other);
                }
                HashJoin { left, right, .. } => {
                    walk(left, at_scan, other);
                    walk(right, at_scan, other);
                }
                VarLengthJoin { left, .. } => walk(left, at_scan, other),
                Project { input, .. }
                | Distinct { input }
                | Aggregate { input, .. }
                | Unwind { input, .. } => walk(input, at_scan, other),
                _ => {}
            }
        }
        let mut a = 0;
        let mut b = 0;
        walk(f, &mut a, &mut b);
        (a, b)
    }

    #[test]
    fn filter_pushes_to_scans_through_join() {
        let plan = compile_opt(
            "MATCH (a:Person)-[:KNOWS]->(b:Person) \
             WHERE a.age > 30 AND b.age > 40 RETURN a, b",
        );
        let (at_scan, elsewhere) = count_filters_above_joins(&plan);
        assert!(at_scan >= 1, "expected pushed filters:\n{}", plan.explain());
        // The join-crossing conjunct count should have dropped to zero
        // here (both conjuncts are single-side).
        assert_eq!(elsewhere, 0, "{}", plan.explain());
    }

    #[test]
    fn cross_side_predicates_stay_above_join() {
        let plan =
            compile_opt("MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.age > b.age RETURN a, b");
        let (_, elsewhere) = count_filters_above_joins(&plan);
        assert!(elsewhere >= 1, "{}", plan.explain());
    }

    #[test]
    fn filter_pushes_below_varlength_left_side() {
        let plan =
            compile_opt("MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = 'en' RETURN p, t");
        // p.lang = 'en' concerns the © side and must sit below the ⋈*.
        fn varlen_left_has_filter(f: &crate::fra::Fra) -> bool {
            use crate::fra::Fra::*;
            match f {
                VarLengthJoin { left, .. } => {
                    fn contains_filter(f: &crate::fra::Fra) -> bool {
                        match f {
                            Filter { .. } => true,
                            Project { input, .. } | Distinct { input } => contains_filter(input),
                            _ => false,
                        }
                    }
                    contains_filter(left)
                }
                Filter { input, .. }
                | Project { input, .. }
                | Distinct { input }
                | Aggregate { input, .. }
                | Unwind { input, .. } => varlen_left_has_filter(input),
                HashJoin { left, right, .. } => {
                    varlen_left_has_filter(left) || varlen_left_has_filter(right)
                }
                _ => false,
            }
        }
        assert!(varlen_left_has_filter(&plan), "{}", plan.explain());
    }

    #[test]
    fn identity_projection_removed() {
        let scan = crate::fra::Fra::ScanVertices {
            var: "n".into(),
            labels: vec![],
            props: vec![],
            carry_map: false,
        };
        let proj = crate::fra::Fra::Project {
            items: vec![(ScalarExpr::Col(0), "n".into())],
            input: Box::new(scan.clone()),
        };
        assert_eq!(optimize(proj), scan);
    }

    #[test]
    fn optimized_plan_keeps_schema() {
        for q in [
            "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.age > 30 RETURN a, b",
            "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
            "MATCH (p:Post) RETURN p.lang AS l, count(*) AS n",
        ] {
            let cq =
                compile_query_with(&parse_query(q).unwrap(), CompileOptions::default()).unwrap();
            let before = cq.fra.schema();
            let after = optimize(cq.fra).schema();
            assert_eq!(before, after, "{q}");
        }
    }
}
