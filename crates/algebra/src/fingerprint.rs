//! Canonical FRA subplan fingerprinting — the hash-consing key for the
//! shared dataflow network.
//!
//! The IVM engine compiles every registered view into one engine-owned
//! operator DAG and *shares* operator nodes between views whose subplans
//! are structurally identical (the Rete idea: identical alpha/beta
//! subnetworks are built once). Sharing is keyed by the fingerprint
//! computed here: a structural hash of an [`Fra`] subtree covering every
//! semantically relevant field — operator kind, scan labels/types/pushed
//! properties, join keys, predicates, projection items *including output
//! names*, and variable-length traversal specs.
//!
//! The fingerprint itself is deliberately *literal*: it hashes the plan
//! exactly as given, names included, and performs no normalisation.
//! Equivalence-up-to-renaming is the job of [`crate::canon`], which the
//! network runs **before** fingerprinting — plans reach this hash
//! already alpha-renamed to positional column names, with commutative
//! structure sorted and σ/π chains normalised, so alpha-equivalent
//! subplans arrive byte-identical and hash identically. Fingerprinting
//! a *raw* plan is still meaningful (and used in tests), just
//! conservative: plans differing only in variable names hash apart.
//!
//! Two subtrees with equal fingerprints are only *candidates* for
//! sharing; the consumer must confirm with a full structural equality
//! check (`Fra: PartialEq`), so a hash collision can never cause two
//! different plans to share state.
//!
//! Fingerprints are deterministic within a process but **not** across
//! processes ([`Symbol`](pgq_common::intern::Symbol) identity is
//! interning-order dependent), which is exactly the lifetime of a
//! dataflow network.

use std::hash::{Hash, Hasher};

use pgq_common::fxhash::FxHasher;

use crate::fra::Fra;

/// A structural hash of an FRA subplan, used as the hash-consing bucket
/// key when deduplicating operator nodes across views.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Fra {
    /// Canonical structural fingerprint of this subplan.
    ///
    /// Implemented by hashing the operator tree's full `Debug`
    /// rendering: `Fra`'s derived `Debug` covers every field of every
    /// variant (scan labels, pushed properties, join keys, predicates,
    /// output names, variable-length specs), so the rendering is a
    /// faithful — if verbose — canonical form. Plans are tiny (tens of
    /// operators), so the O(plan size) string is irrelevant next to the
    /// initial evaluation a cache miss triggers.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FxHasher::default();
        // Write through `fmt::Write` so no intermediate String survives.
        struct HashWriter<'a>(&'a mut FxHasher);
        impl std::fmt::Write for HashWriter<'_> {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                s.as_bytes().hash(self.0);
                Ok(())
            }
        }
        use std::fmt::Write;
        write!(HashWriter(&mut h), "{self:?}").expect("Debug never fails");
        Fingerprint(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::intern::Symbol;

    fn scan(var: &str, label: &str) -> Fra {
        Fra::ScanVertices {
            var: var.into(),
            labels: vec![Symbol::intern(label)],
            props: vec![],
            carry_map: false,
        }
    }

    #[test]
    fn identical_plans_share_a_fingerprint() {
        let a = Fra::Distinct {
            input: Box::new(scan("n", "Post")),
        };
        let b = Fra::Distinct {
            input: Box::new(scan("n", "Post")),
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn structurally_different_plans_differ() {
        let a = scan("n", "Post");
        let b = scan("n", "Comm");
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Different operator over the same input also differs.
        let c = Fra::Distinct {
            input: Box::new(scan("n", "Post")),
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn variable_names_are_part_of_the_fingerprint() {
        // Literal by design: the raw fingerprint does no renaming.
        // Alpha-equivalence is established by `canon` *before* plans
        // are fingerprinted for consing.
        assert_ne!(
            scan("n", "Post").fingerprint(),
            scan("m", "Post").fingerprint()
        );
    }

    #[test]
    fn fingerprint_is_stable_across_clones() {
        let plan = Fra::HashJoin {
            left: Box::new(scan("a", "A")),
            right: Box::new(scan("b", "B")),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        assert_eq!(plan.fingerprint(), plan.clone().fingerprint());
    }
}
