//! Canonical FRA subplan fingerprinting — the hash-consing key for the
//! shared dataflow network.
//!
//! The IVM engine compiles every registered view into one engine-owned
//! operator DAG and *shares* operator nodes between views whose subplans
//! are structurally identical (the Rete idea: identical alpha/beta
//! subnetworks are built once). Sharing is keyed by the fingerprint
//! computed here: a structural hash of an [`Fra`] subtree covering every
//! semantically relevant field — operator kind, scan labels/types/pushed
//! properties, join keys, predicates, projection items *including output
//! names*, and variable-length traversal specs.
//!
//! The fingerprint itself is deliberately *literal*: it hashes the plan
//! exactly as given, names included, and performs no normalisation.
//! Equivalence-up-to-renaming is the job of [`crate::canon`], which the
//! network runs **before** fingerprinting — plans reach this hash
//! already alpha-renamed to positional column names, with commutative
//! structure sorted and σ/π chains normalised, so alpha-equivalent
//! subplans arrive byte-identical and hash identically. Fingerprinting
//! a *raw* plan is still meaningful (and used in tests), just
//! conservative: plans differing only in variable names hash apart.
//!
//! Two subtrees with equal fingerprints are only *candidates* for
//! sharing; the consumer must confirm with a full structural equality
//! check (`Fra: PartialEq`), so a hash collision can never cause two
//! different plans to share state.
//!
//! Fingerprints are **content-derived and cross-process stable**: every
//! input to the hash is plan content. [`Symbol`](pgq_common::intern::Symbol)s
//! render their resolved *string* (not the interning-order-dependent
//! intern id) in `Debug` output, canonicalisation sorts commutative
//! symbol lists by resolved string, and [`FxHasher`] is unseeded — so
//! `fingerprint(canon(q))` is a pure function of the query text, however
//! interning happened to be ordered in the emitting process. The
//! durability layer relies on this: operator-state snapshots are keyed
//! by fingerprint and restored by a *different* process
//! (`pgq_durability`; the cross-process property is asserted by the
//! `fingerprint_stability` integration test, which re-runs itself as a
//! child process with a scrambled interner).

use std::hash::{Hash, Hasher};

use pgq_common::fxhash::FxHasher;

use crate::fra::Fra;

/// A structural hash of an FRA subplan, used as the hash-consing bucket
/// key when deduplicating operator nodes across views.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Hash the plan's full `Debug` rendering into `h` without
/// materialising an intermediate `String`.
fn hash_debug(h: &mut FxHasher, fra: &Fra) {
    struct HashWriter<'a>(&'a mut FxHasher);
    impl std::fmt::Write for HashWriter<'_> {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            s.as_bytes().hash(self.0);
            Ok(())
        }
    }
    use std::fmt::Write;
    write!(HashWriter(h), "{fra:?}").expect("Debug never fails");
}

impl Fra {
    /// Canonical structural fingerprint of this subplan.
    ///
    /// Implemented by hashing the operator tree's full `Debug`
    /// rendering: `Fra`'s derived `Debug` covers every field of every
    /// variant (scan labels, pushed properties, join keys, predicates,
    /// output names, variable-length specs), so the rendering is a
    /// faithful — if verbose — canonical form. Plans are tiny (tens of
    /// operators), so the O(plan size) string is irrelevant next to the
    /// initial evaluation a cache miss triggers.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FxHasher::default();
        hash_debug(&mut h, self);
        Fingerprint(h.finish())
    }

    /// A second, domain-separated structural hash over the same
    /// rendering. In-process hash-consing confirms a fingerprint match
    /// with a full plan-equality check; durable snapshots cannot ship
    /// the plan, so they store the `(fingerprint, check)` pair instead
    /// — a cross-plan collision must now defeat two independent 64-bit
    /// hashes before foreign operator state could be restored.
    pub fn snapshot_check(&self) -> Fingerprint {
        let mut h = FxHasher::default();
        // Domain separator: makes this hash independent of
        // `fingerprint()` despite sharing the rendering.
        b"pgq-snapshot-check".hash(&mut h);
        hash_debug(&mut h, self);
        Fingerprint(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::intern::Symbol;

    fn scan(var: &str, label: &str) -> Fra {
        Fra::ScanVertices {
            var: var.into(),
            labels: vec![Symbol::intern(label)],
            props: vec![],
            carry_map: false,
        }
    }

    #[test]
    fn identical_plans_share_a_fingerprint() {
        let a = Fra::Distinct {
            input: Box::new(scan("n", "Post")),
        };
        let b = Fra::Distinct {
            input: Box::new(scan("n", "Post")),
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn structurally_different_plans_differ() {
        let a = scan("n", "Post");
        let b = scan("n", "Comm");
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Different operator over the same input also differs.
        let c = Fra::Distinct {
            input: Box::new(scan("n", "Post")),
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn variable_names_are_part_of_the_fingerprint() {
        // Literal by design: the raw fingerprint does no renaming.
        // Alpha-equivalence is established by `canon` *before* plans
        // are fingerprinted for consing.
        assert_ne!(
            scan("n", "Post").fingerprint(),
            scan("m", "Post").fingerprint()
        );
    }

    #[test]
    fn fingerprint_ignores_interning_order() {
        // Two distinct label strings interned in opposite orders must
        // not influence each other's plan fingerprints: the hash reads
        // resolved strings, never intern ids. (The full cross-process
        // property is asserted by the `fingerprint_stability`
        // integration test; this guards the in-process half — symbol
        // identity is not part of the hash input.)
        let early = scan("n", "FpEarly");
        let fp_before = early.fingerprint();
        // Interning more symbols afterwards shifts every later id but
        // must leave existing fingerprints untouched.
        for i in 0..64 {
            Symbol::intern(&format!("fp-decoy-{i}"));
        }
        assert_eq!(scan("n", "FpEarly").fingerprint(), fp_before);
    }

    #[test]
    fn snapshot_check_is_independent_of_fingerprint() {
        let p = scan("n", "Post");
        // Same rendering, different domain → different hash function.
        assert_ne!(p.fingerprint(), p.snapshot_check());
        assert_eq!(p.snapshot_check(), p.clone().snapshot_check());
        assert_ne!(
            scan("n", "Post").snapshot_check(),
            scan("n", "Comm").snapshot_check()
        );
    }

    #[test]
    fn fingerprint_is_stable_across_clones() {
        let plan = Fra::HashJoin {
            left: Box::new(scan("a", "A")),
            right: Box::new(scan("b", "B")),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        assert_eq!(plan.fingerprint(), plan.clone().fingerprint());
    }
}
