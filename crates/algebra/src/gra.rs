//! Graph relational algebra (GRA) — the paper's step-1 representation.
//!
//! GRA is variable-named (not positional) and stays close to the query:
//! the nullary © *get-vertices* operator, the unary ↑ *expand-out*
//! operator (with transitive `*` variants), plus the classic σ/π and a
//! natural join for combining path patterns. Property accesses still
//! appear inside σ/π predicates as `var.prop` — resolving them is the job
//! of the later NRA/FRA stages.

use pgq_common::dir::Direction;
use pgq_common::intern::Symbol;
use pgq_parser::ast::Expr;

/// Variable-length bounds (`*`, `*2`, `*1..3`) carried into the algebra.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarLen {
    /// Minimum hops.
    pub min: u32,
    /// Maximum hops (`None` = unbounded).
    pub max: Option<u32>,
}

/// How an expand step participates in path construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathMode {
    /// No path tracking (plain single hop).
    None,
    /// Single hop appending to an already-started named path.
    Append(String),
    /// Variable-length hop emitting a fresh path column (hidden `_p*`
    /// names keep bag multiplicity correct even when the user did not
    /// name the path).
    Emit(String),
    /// Variable-length hop inside a named path: emit `segment`, then
    /// concatenate it into `into` and drop the segment.
    Concat {
        /// Fresh column for the segment produced by this hop.
        segment: String,
        /// The named path being extended.
        into: String,
    },
}

/// What kind of value a query variable denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// A vertex.
    Node,
    /// An edge.
    Rel,
    /// A path.
    Path,
    /// A scalar/collection produced by `UNWIND` or projection.
    Value,
}

/// A GRA operator tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Gra {
    /// Nullary: the single empty tuple (identity for joins).
    Unit,
    /// © `get-vertices`: all vertices with the given labels bound to `var`.
    GetVertices {
        /// Bound variable.
        var: String,
        /// Required labels (conjunctive; empty = all vertices).
        labels: Vec<Symbol>,
    },
    /// ↑ `expand-out` (and its transitive variant when `range` is set):
    /// navigate from `src` over edges to `dst`.
    Expand {
        /// Input relation (must bind `src`).
        input: Box<Gra>,
        /// Source variable.
        src: String,
        /// Edge variable (always named; fresh for anonymous patterns).
        edge: String,
        /// Target variable.
        dst: String,
        /// Admissible edge types (disjunctive; empty = any).
        types: Vec<Symbol>,
        /// Labels on the source position of this step (display fidelity:
        /// the paper writes `⇑(c:Comm)(p:Post)` with the source label).
        src_labels: Vec<Symbol>,
        /// Labels required on the target.
        dst_labels: Vec<Symbol>,
        /// Traversal direction.
        dir: Direction,
        /// Variable-length bounds; `None` = single hop.
        range: Option<VarLen>,
        /// Path construction role of this step.
        path: PathMode,
        /// Literal edge-property constraints applied to every traversed
        /// edge (used by variable-length patterns, where general
        /// predicates cannot reference the individual edges).
        edge_prop_filters: Vec<(Symbol, pgq_common::value::Value)>,
        /// For a named variable on a variable-length relationship
        /// (`-[es:R*]->`): bind `es` to the list of traversed
        /// relationships.
        rel_alias: Option<String>,
    },
    /// Initialise a named path column as the zero-length path at `node`.
    PathStart {
        /// Input relation (must bind `node`).
        input: Box<Gra>,
        /// Anchor node variable.
        node: String,
        /// Path variable to introduce.
        path: String,
    },
    /// Natural join on shared variable names (cartesian when disjoint).
    Join {
        /// Left input.
        left: Box<Gra>,
        /// Right input.
        right: Box<Gra>,
    },
    /// ⋉ / ▷ semijoin / antijoin on shared variable names: keep a left
    /// tuple iff the right side has ≥1 (`anti = false`) or 0
    /// (`anti = true`) matches. Compiled from `[NOT] exists(pattern)` —
    /// an extension beyond the paper's fragment.
    SemiJoin {
        /// Left input (passed through unchanged).
        left: Box<Gra>,
        /// Existence-tested subpattern.
        right: Box<Gra>,
        /// Antijoin (`NOT exists`)?
        anti: bool,
    },
    /// σ selection.
    Select {
        /// Input relation.
        input: Box<Gra>,
        /// Predicate over bound variables (parser-level expression).
        predicate: Expr,
    },
    /// π projection.
    Project {
        /// Input relation.
        input: Box<Gra>,
        /// `(expression, output name)` pairs.
        items: Vec<(Expr, String)>,
    },
    /// δ duplicate elimination.
    Distinct {
        /// Input relation.
        input: Box<Gra>,
    },
    /// γ grouping aggregation (the aggregation *extension*; the paper
    /// defers this to future work).
    Aggregate {
        /// Input relation.
        input: Box<Gra>,
        /// Grouping expressions with output names.
        group: Vec<(Expr, String)>,
        /// Aggregate expressions with output names.
        aggs: Vec<(Expr, String)>,
    },
    /// ω unwind: one output tuple per element of the list expression.
    Unwind {
        /// Input relation.
        input: Box<Gra>,
        /// List-valued expression.
        expr: Expr,
        /// Introduced variable.
        alias: String,
    },
}

impl Gra {
    /// Variables bound by this subtree, in schema order.
    pub fn bound_vars(&self) -> Vec<String> {
        match self {
            Gra::Unit => vec![],
            Gra::GetVertices { var, .. } => vec![var.clone()],
            Gra::Expand {
                input,
                edge,
                dst,
                path,
                range,
                rel_alias,
                ..
            } => {
                let mut v = input.bound_vars();
                if range.is_none() && !v.contains(edge) {
                    v.push(edge.clone());
                }
                if !v.contains(dst) {
                    v.push(dst.clone());
                }
                match path {
                    PathMode::Emit(p) => v.push(p.clone()),
                    PathMode::None | PathMode::Append(_) | PathMode::Concat { .. } => {}
                }
                if let Some(a) = rel_alias {
                    v.push(a.clone());
                }
                v
            }
            Gra::PathStart { input, path, .. } => {
                let mut v = input.bound_vars();
                v.push(path.clone());
                v
            }
            Gra::Join { left, right } => {
                let mut v = left.bound_vars();
                for r in right.bound_vars() {
                    if !v.contains(&r) {
                        v.push(r);
                    }
                }
                v
            }
            Gra::SemiJoin { left, .. } => left.bound_vars(),
            Gra::Select { input, .. } | Gra::Distinct { input } => input.bound_vars(),
            Gra::Project { items, .. } => items.iter().map(|(_, n)| n.clone()).collect(),
            Gra::Aggregate { group, aggs, .. } => group
                .iter()
                .map(|(_, n)| n.clone())
                .chain(aggs.iter().map(|(_, n)| n.clone()))
                .collect(),
            Gra::Unwind { input, alias, .. } => {
                let mut v = input.bound_vars();
                v.push(alias.clone());
                v
            }
        }
    }
}
