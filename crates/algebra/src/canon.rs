//! Plan canonicalisation — the normal form under which alpha-equivalent
//! FRA subplans become *structurally identical*, so the shared dataflow
//! network's hash-consing (see [`crate::fingerprint`] and
//! `pgq_ivm::network`) collapses them to one operator chain.
//!
//! [`canonicalize`] rewrites a plan in four ways, none of which changes
//! the bag of result *tuples* (only their column order, which the
//! returned [`CanonPlan::mapping`] records):
//!
//! 1. **Alpha-renaming.** Every variable/column name is replaced by a
//!    positional de Bruijn-style name (`%0`, `%1`, …, its index in the
//!    operator's output schema). FRA is positional — [`ScalarExpr`]
//!    references columns by index, never by name — so names are pure
//!    decoration and `MATCH (a:Post)` and `MATCH (p:Post)` canonicalise
//!    to the same scan. The view's user-facing schema is restored by the
//!    registering sink, not by the plan.
//! 2. **Commutative sorting.** Scan label/type sets, pushed-property
//!    lists, filter conjuncts, hash-join operands and key pairs,
//!    projection items, and aggregate group/call lists are sorted under
//!    a deterministic (in-process) total order, so `WHERE a AND b`
//!    matches `WHERE b AND a` and `A ⋈ B` matches `B ⋈ A`.
//! 3. **σ/π chain normalisation.** Adjacent filters fuse into one
//!    conjunction; filters sink below projections and duplicate
//!    elimination to a canonical position (directly above the topmost
//!    stateful operator — never *into* joins or scans, so a family of
//!    views differing only in a top-level `WHERE` keeps one shared
//!    prefix with a private σ suffix each); adjacent projections fuse;
//!    full-arity permutation projections vanish into the column
//!    mapping; `δ∘δ` collapses.
//! 4. **Column mapping.** Each rewrite that permutes columns composes
//!    into `mapping`, a bijection from the original plan's output
//!    columns to the canonical plan's, and
//!    [`CanonPlan::with_restored_order`] materialises it as a tail
//!    projection when it is not the identity. That tail is itself a
//!    canonical plan, so views sharing a permutation also share the
//!    tail node.
//!
//! # Soundness
//!
//! Every rewrite maps each input tuple to exactly one output tuple with
//! unchanged multiplicity, so any operator above sees a column-permuted
//! but otherwise identical bag. Two caveats are deliberate:
//!
//! * Conjunct reordering assumes predicates do not rely on `AND`
//!   short-circuiting to suppress *evaluation errors* (Kleene truth is
//!   order-independent; an error drops the tuple in both orders but
//!   trips a debug assertion). Plans compiled by [`crate::pipeline`]
//!   are well-typed and never rely on it.
//! * Sorting keys derive from interned [`Symbol`] contents and
//!   `Debug` renderings, so the canonical form is deterministic within
//!   a process but not across processes — the same lifetime as the
//!   fingerprints computed from it.

use pgq_common::intern::Symbol;
use pgq_parser::ast::BinOp;

use crate::expr::{AggCall, ScalarExpr};
use crate::fra::{Fra, PropPush, VarLenSpec};

/// A canonicalised plan plus the column permutation that recovers the
/// original plan's output order.
#[derive(Clone, Debug, PartialEq)]
pub struct CanonPlan {
    /// The canonical form: positional names, sorted commutative
    /// structure, normalised σ/π chains.
    pub plan: Fra,
    /// `mapping[i] = j`: column `i` of the *original* plan's output
    /// holds, for every result tuple, the value of column `j` of the
    /// canonical plan's output. Always a bijection (same arity).
    pub mapping: Vec<usize>,
}

impl CanonPlan {
    /// Does the canonical plan already emit columns in the original
    /// order?
    pub fn is_identity(&self) -> bool {
        self.mapping.iter().enumerate().all(|(i, &j)| i == j)
    }

    /// The canonical plan with, when needed, a tail projection restoring
    /// the original column order. The tail uses positional names, so it
    /// is itself canonical and shared between views that need the same
    /// permutation.
    ///
    /// When the canonical root is itself a projection, the restoring
    /// permutation is folded *into* it instead of stacking a second π:
    /// a permuted `RETURN` then costs exactly one π node (shared with
    /// every view wanting the same order) and the per-transaction π
    /// work stays identical to the pre-canonicalisation plan.
    pub fn with_restored_order(&self) -> Fra {
        if self.is_identity() {
            return self.plan.clone();
        }
        if let Fra::Project { input, items } = &self.plan {
            return Fra::Project {
                input: input.clone(),
                items: self
                    .mapping
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (items[c].0.clone(), pos_name(i)))
                    .collect(),
            };
        }
        Fra::Project {
            input: Box::new(self.plan.clone()),
            items: self
                .mapping
                .iter()
                .enumerate()
                .map(|(i, &c)| (ScalarExpr::Col(c), pos_name(i)))
                .collect(),
        }
    }
}

/// Canonicalise `fra`. See the module docs for the normal form.
pub fn canonicalize(fra: &Fra) -> CanonPlan {
    let (plan, mapping) = canon(fra);
    debug_assert_eq!(mapping.len(), fra.schema().len(), "mapping is total");
    debug_assert_eq!(mapping.len(), plan.schema().len(), "mapping is a bijection");
    CanonPlan { plan, mapping }
}

/// Apply a consistent renaming to every variable/column *name* in the
/// plan. Since FRA expressions reference columns positionally, any such
/// renaming is an alpha-renaming: it never changes results, and
/// [`canonicalize`] erases it entirely (the property the canonicaliser's
/// test suite asserts).
pub fn alpha_rename(fra: &Fra, rename: &mut dyn FnMut(&str) -> String) -> Fra {
    let props = |ps: &[PropPush], rename: &mut dyn FnMut(&str) -> String| -> Vec<PropPush> {
        ps.iter()
            .map(|p| PropPush {
                prop: p.prop,
                col: rename(&p.col),
            })
            .collect()
    };
    match fra {
        Fra::Unit => Fra::Unit,
        Fra::ScanVertices {
            var,
            labels,
            props: ps,
            carry_map,
        } => Fra::ScanVertices {
            var: rename(var),
            labels: labels.clone(),
            props: props(ps, rename),
            carry_map: *carry_map,
        },
        Fra::ScanEdges {
            src,
            edge,
            dst,
            types,
            src_labels,
            dst_labels,
            src_props,
            edge_props,
            dst_props,
            dir,
            carry_maps,
        } => Fra::ScanEdges {
            src: rename(src),
            edge: rename(edge),
            dst: rename(dst),
            types: types.clone(),
            src_labels: src_labels.clone(),
            dst_labels: dst_labels.clone(),
            src_props: props(src_props, rename),
            edge_props: props(edge_props, rename),
            dst_props: props(dst_props, rename),
            dir: *dir,
            carry_maps: *carry_maps,
        },
        Fra::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
            anti,
        } => Fra::SemiJoin {
            left: Box::new(alpha_rename(left, rename)),
            right: Box::new(alpha_rename(right, rename)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            anti: *anti,
        },
        Fra::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => Fra::HashJoin {
            left: Box::new(alpha_rename(left, rename)),
            right: Box::new(alpha_rename(right, rename)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
        },
        Fra::VarLengthJoin {
            left,
            src_col,
            spec,
            dst,
            path,
        } => Fra::VarLengthJoin {
            left: Box::new(alpha_rename(left, rename)),
            src_col: *src_col,
            spec: VarLenSpec {
                dst_props: props(&spec.dst_props, rename),
                ..spec.clone()
            },
            dst: rename(dst),
            path: rename(path),
        },
        Fra::Filter { input, predicate } => Fra::Filter {
            input: Box::new(alpha_rename(input, rename)),
            predicate: predicate.clone(),
        },
        Fra::Project { input, items } => Fra::Project {
            input: Box::new(alpha_rename(input, rename)),
            items: items.iter().map(|(e, n)| (e.clone(), rename(n))).collect(),
        },
        Fra::Distinct { input } => Fra::Distinct {
            input: Box::new(alpha_rename(input, rename)),
        },
        Fra::Aggregate { input, group, aggs } => Fra::Aggregate {
            input: Box::new(alpha_rename(input, rename)),
            group: group.iter().map(|(e, n)| (e.clone(), rename(n))).collect(),
            aggs: aggs.iter().map(|(c, n)| (c.clone(), rename(n))).collect(),
        },
        Fra::Unwind { input, expr, alias } => Fra::Unwind {
            input: Box::new(alpha_rename(input, rename)),
            expr: expr.clone(),
            alias: rename(alias),
        },
        Fra::MultiwayJoin {
            inputs,
            var_of,
            names,
        } => Fra::MultiwayJoin {
            inputs: inputs.iter().map(|i| alpha_rename(i, rename)).collect(),
            var_of: var_of.clone(),
            names: names.iter().map(|n| rename(n)).collect(),
        },
    }
}

/// Canonical positional column name.
fn pos_name(i: usize) -> String {
    format!("%{i}")
}

/// Deterministic total-order key for an expression (injective enough:
/// derived `Debug` prints every field).
fn expr_key(e: &ScalarExpr) -> String {
    format!("{e:?}")
}

/// Deterministic total-order key for a canonical subplan.
fn plan_key(f: &Fra) -> String {
    format!("{f:?}")
}

/// Sort + dedup a symbol set (conjunctive label sets and any-of type
/// sets are both order-insensitive, and a duplicate entry is the same
/// constraint twice).
fn sort_syms(syms: &[Symbol]) -> Vec<Symbol> {
    let mut v = syms.to_vec();
    v.sort_by_key(|s| s.resolve());
    v.dedup();
    v
}

/// Sort pushed properties by property key; returns the sorted list
/// (column names NOT yet assigned) and the permutation
/// `perm[original_index] = sorted_index`.
fn sort_props(props: &[PropPush]) -> (Vec<PropPush>, Vec<usize>) {
    let mut ix: Vec<usize> = (0..props.len()).collect();
    ix.sort_by_cached_key(|&o| (props[o].prop.resolve(), o));
    let mut perm = vec![0usize; props.len()];
    for (k, &o) in ix.iter().enumerate() {
        perm[o] = k;
    }
    (ix.iter().map(|&o| props[o].clone()).collect(), perm)
}

/// Split a predicate into its `AND` conjuncts.
fn conjunct_list(e: ScalarExpr) -> Vec<ScalarExpr> {
    match e {
        ScalarExpr::Binary(BinOp::And, l, r) => {
            let mut out = conjunct_list(*l);
            out.extend(conjunct_list(*r));
            out
        }
        other => vec![other],
    }
}

/// Sort + dedup conjuncts and fold them back into one predicate
/// (`p ∧ p ≡ p` in Kleene logic, so deduplication is sound).
fn conjoin_sorted(mut conjs: Vec<ScalarExpr>) -> ScalarExpr {
    conjs.sort_by_cached_key(expr_key);
    conjs.dedup();
    conjs
        .into_iter()
        .reduce(|a, b| ScalarExpr::Binary(BinOp::And, Box::new(a), Box::new(b)))
        .expect("at least one conjunct")
}

/// Sink a filter to its canonical position: below projections and
/// duplicate elimination, fused into any filter it lands on, but never
/// into joins, scans, aggregates or unwinds. `plan` must already be
/// canonical.
fn attach_filter(plan: Fra, conjs: Vec<ScalarExpr>) -> Fra {
    match plan {
        Fra::Project { input, items } => {
            // Substituting through the projection can surface nested
            // `AND`s (a conjunct referencing a boolean item): re-split
            // so they sort as individual conjuncts.
            let pushed = conjs
                .iter()
                .flat_map(|c| conjunct_list(c.substitute(&items)))
                .collect();
            Fra::Project {
                input: Box::new(attach_filter(*input, pushed)),
                items,
            }
        }
        Fra::Distinct { input } => Fra::Distinct {
            input: Box::new(attach_filter(*input, conjs)),
        },
        Fra::Filter { input, predicate } => {
            let mut all = conjunct_list(predicate);
            all.extend(conjs);
            Fra::Filter {
                input,
                predicate: conjoin_sorted(all),
            }
        }
        other => Fra::Filter {
            input: Box::new(other),
            predicate: conjoin_sorted(conjs),
        },
    }
}

/// Core recursion: returns the canonical plan and the original→canonical
/// output-column bijection.
fn canon(fra: &Fra) -> (Fra, Vec<usize>) {
    match fra {
        Fra::Unit => (Fra::Unit, vec![]),

        Fra::ScanVertices {
            labels,
            props,
            carry_map,
            ..
        } => {
            let (mut sorted, perm) = sort_props(props);
            for (k, p) in sorted.iter_mut().enumerate() {
                p.col = pos_name(1 + k);
            }
            let mut mapping = vec![0usize];
            mapping.extend(perm.iter().map(|&k| 1 + k));
            if *carry_map {
                mapping.push(1 + props.len());
            }
            (
                Fra::ScanVertices {
                    var: pos_name(0),
                    labels: sort_syms(labels),
                    props: sorted,
                    carry_map: *carry_map,
                },
                mapping,
            )
        }

        Fra::ScanEdges {
            types,
            src_labels,
            dst_labels,
            src_props,
            edge_props,
            dst_props,
            dir,
            carry_maps,
            ..
        } => {
            let (mut sp, perm_s) = sort_props(src_props);
            let (mut ep, perm_e) = sort_props(edge_props);
            let (mut dp, perm_d) = sort_props(dst_props);
            let (ns, ne, nd) = (sp.len(), ep.len(), dp.len());
            for (k, p) in sp.iter_mut().enumerate() {
                p.col = pos_name(3 + k);
            }
            for (k, p) in ep.iter_mut().enumerate() {
                p.col = pos_name(3 + ns + k);
            }
            for (k, p) in dp.iter_mut().enumerate() {
                p.col = pos_name(3 + ns + ne + k);
            }
            let mut mapping = vec![0, 1, 2];
            mapping.extend(perm_s.iter().map(|&k| 3 + k));
            mapping.extend(perm_e.iter().map(|&k| 3 + ns + k));
            mapping.extend(perm_d.iter().map(|&k| 3 + ns + ne + k));
            let mut next = 3 + ns + ne + nd;
            for flag in [carry_maps.0, carry_maps.1, carry_maps.2] {
                if flag {
                    mapping.push(next);
                    next += 1;
                }
            }
            (
                Fra::ScanEdges {
                    src: pos_name(0),
                    edge: pos_name(1),
                    dst: pos_name(2),
                    types: sort_syms(types),
                    src_labels: sort_syms(src_labels),
                    dst_labels: sort_syms(dst_labels),
                    src_props: sp,
                    edge_props: ep,
                    dst_props: dp,
                    dir: *dir,
                    carry_maps: *carry_maps,
                },
                mapping,
            )
        }

        Fra::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let (cl, ml) = canon(left);
            let (cr, mr) = canon(right);
            let lk: Vec<usize> = left_keys.iter().map(|&k| ml[k]).collect();
            let rk: Vec<usize> = right_keys.iter().map(|&k| mr[k]).collect();
            canon_hash_join(cl, ml, cr, mr, lk, rk)
        }

        Fra::SemiJoin {
            left,
            right,
            left_keys,
            right_keys,
            anti,
        } => {
            let (cl, ml) = canon(left);
            let (cr, mr) = canon(right);
            let mut pairs: Vec<(usize, usize)> = left_keys
                .iter()
                .zip(right_keys)
                .map(|(&l, &r)| (ml[l], mr[r]))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            (
                Fra::SemiJoin {
                    left: Box::new(cl),
                    right: Box::new(cr),
                    left_keys: pairs.iter().map(|&(l, _)| l).collect(),
                    right_keys: pairs.iter().map(|&(_, r)| r).collect(),
                    anti: *anti,
                },
                ml,
            )
        }

        Fra::VarLengthJoin {
            left,
            src_col,
            spec,
            ..
        } => {
            let (cl, ml) = canon(left);
            let la = ml.len();
            let (mut dp, perm_d) = sort_props(&spec.dst_props);
            let np = dp.len();
            for (k, p) in dp.iter_mut().enumerate() {
                p.col = pos_name(la + 1 + k);
            }
            let mut filters = spec.edge_prop_filters.clone();
            filters.sort_by_cached_key(|(k, v)| (k.resolve(), format!("{v:?}")));
            filters.dedup();
            let mut mapping = ml;
            mapping.push(la); // dst
            mapping.extend(perm_d.iter().map(|&k| la + 1 + k));
            let mut next = la + 1 + np;
            if spec.dst_carry_map {
                mapping.push(next);
                next += 1;
            }
            mapping.push(next); // path
            (
                Fra::VarLengthJoin {
                    left: Box::new(cl),
                    src_col: mapping[*src_col],
                    spec: VarLenSpec {
                        types: sort_syms(&spec.types),
                        dir: spec.dir,
                        dst_labels: sort_syms(&spec.dst_labels),
                        dst_props: dp,
                        dst_carry_map: spec.dst_carry_map,
                        edge_prop_filters: filters,
                        min: spec.min,
                        max: spec.max,
                    },
                    dst: pos_name(la),
                    path: pos_name(next),
                },
                mapping,
            )
        }

        Fra::Filter { input, predicate } => {
            let (cin, mi) = canon(input);
            let pred = predicate.remap_columns(&|c| mi[c]);
            (attach_filter(cin, conjunct_list(pred)), mi)
        }

        Fra::Project { input, items } => {
            let (mut cin, mi) = canon(input);
            let mut exprs: Vec<ScalarExpr> = items
                .iter()
                .map(|(e, _)| e.remap_columns(&|c| mi[c]))
                .collect();
            // π∘π fusion: substitute through the inner projection.
            if let Fra::Project {
                input: inner,
                items: inner_items,
            } = cin
            {
                exprs = exprs.iter().map(|e| e.substitute(&inner_items)).collect();
                cin = *inner;
            }
            // A full-arity permutation of bare column references is pure
            // renaming: fold it into the mapping and vanish.
            let arity = cin.schema().len();
            if exprs.len() == arity {
                let cols: Vec<Option<usize>> = exprs
                    .iter()
                    .map(|e| match e {
                        ScalarExpr::Col(c) => Some(*c),
                        _ => None,
                    })
                    .collect();
                if cols.iter().all(Option::is_some) {
                    let mut seen = vec![false; arity];
                    let mut bijective = true;
                    for c in cols.iter().flatten() {
                        if *c >= arity || seen[*c] {
                            bijective = false;
                            break;
                        }
                        seen[*c] = true;
                    }
                    if bijective {
                        let mapping = cols.into_iter().map(|c| c.expect("all Some")).collect();
                        return (cin, mapping);
                    }
                }
            }
            // Sort items under the expression order; output names are
            // positional, so alpha-renamed projections coincide.
            let mut order: Vec<usize> = (0..exprs.len()).collect();
            order.sort_by_cached_key(|&o| (expr_key(&exprs[o]), o));
            let mut mapping = vec![0usize; exprs.len()];
            for (pos, &o) in order.iter().enumerate() {
                mapping[o] = pos;
            }
            let sorted_items: Vec<(ScalarExpr, String)> = order
                .iter()
                .enumerate()
                .map(|(pos, &o)| (exprs[o].clone(), pos_name(pos)))
                .collect();
            (
                Fra::Project {
                    input: Box::new(cin),
                    items: sorted_items,
                },
                mapping,
            )
        }

        Fra::Distinct { input } => {
            let (cin, mi) = canon(input);
            if matches!(cin, Fra::Distinct { .. }) {
                (cin, mi) // δ∘δ = δ
            } else {
                (
                    Fra::Distinct {
                        input: Box::new(cin),
                    },
                    mi,
                )
            }
        }

        Fra::Aggregate { input, group, aggs } => {
            let (mut cin, mi) = canon(input);
            let mut group_exprs: Vec<ScalarExpr> = group
                .iter()
                .map(|(e, _)| e.remap_columns(&|c| mi[c]))
                .collect();
            let mut agg_calls: Vec<AggCall> = aggs
                .iter()
                .map(|(c, _)| AggCall {
                    func: c.func,
                    arg: c.arg.as_ref().map(|a| a.remap_columns(&|c| mi[c])),
                    distinct: c.distinct,
                })
                .collect();
            // γ∘π fusion: γ evaluates expressions per input tuple and π
            // is per-tuple too, so substituting the projection into the
            // grouping/aggregate expressions is exact.
            if let Fra::Project {
                input: inner,
                items,
            } = cin
            {
                group_exprs = group_exprs.iter().map(|e| e.substitute(&items)).collect();
                for call in &mut agg_calls {
                    call.arg = call.arg.as_ref().map(|a| a.substitute(&items));
                }
                cin = *inner;
            }
            let mut gorder: Vec<usize> = (0..group_exprs.len()).collect();
            gorder.sort_by_cached_key(|&o| (expr_key(&group_exprs[o]), o));
            let mut aorder: Vec<usize> = (0..agg_calls.len()).collect();
            aorder.sort_by_cached_key(|&o| (format!("{:?}", agg_calls[o]), o));
            let ng = gorder.len();
            let mut mapping = vec![0usize; ng + aorder.len()];
            for (pos, &o) in gorder.iter().enumerate() {
                mapping[o] = pos;
            }
            for (pos, &o) in aorder.iter().enumerate() {
                mapping[ng + o] = ng + pos;
            }
            (
                Fra::Aggregate {
                    input: Box::new(cin),
                    group: gorder
                        .iter()
                        .enumerate()
                        .map(|(pos, &o)| (group_exprs[o].clone(), pos_name(pos)))
                        .collect(),
                    aggs: aorder
                        .iter()
                        .enumerate()
                        .map(|(pos, &o)| (agg_calls[o].clone(), pos_name(ng + pos)))
                        .collect(),
                },
                mapping,
            )
        }

        Fra::Unwind { input, expr, .. } => {
            let (cin, mi) = canon(input);
            let la = mi.len();
            let mut mapping = mi;
            mapping.push(la);
            (
                Fra::Unwind {
                    input: Box::new(cin),
                    expr: expr.remap_columns(&|c| mapping[c]),
                    alias: pos_name(la),
                },
                mapping,
            )
        }

        Fra::MultiwayJoin {
            inputs,
            var_of,
            names,
        } => {
            // The n-ary join is fully commutative in its operands:
            // canonicalise each operand, push its variable map through
            // the operand's own column bijection, then sort operands
            // under the (plan, variable map) order. Variable ids are
            // semantic (they are the elimination order and the output
            // positions), so they — and therefore the output schema —
            // stay fixed; only operand order and names are normalised.
            let mut ops: Vec<(Fra, Vec<usize>)> = inputs
                .iter()
                .zip(var_of)
                .map(|(inp, vars)| {
                    let (ci, mi) = canon(inp);
                    let mut cvars = vec![0usize; vars.len()];
                    for (c, &v) in vars.iter().enumerate() {
                        cvars[mi[c]] = v;
                    }
                    (ci, cvars)
                })
                .collect();
            ops.sort_by_cached_key(|(ci, cvars)| (plan_key(ci), cvars.clone()));
            (
                Fra::MultiwayJoin {
                    inputs: ops.iter().map(|(ci, _)| ci.clone()).collect(),
                    var_of: ops.into_iter().map(|(_, v)| v).collect(),
                    names: (0..names.len()).map(pos_name).collect(),
                },
                (0..names.len()).collect(),
            )
        }
    }
}

/// Canonicalise a hash join: pick the operand orientation whose
/// `(left key, right key, sorted pairs)` triple is smallest under the
/// plan order — hash joins are bag-commutative, so either orientation
/// computes the same tuples up to the column permutation returned.
fn canon_hash_join(
    cl: Fra,
    ml: Vec<usize>,
    cr: Fra,
    mr: Vec<usize>,
    lk: Vec<usize>,
    rk: Vec<usize>,
) -> (Fra, Vec<usize>) {
    let sorted_pairs = |a: &[usize], b: &[usize]| -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = a.iter().copied().zip(b.iter().copied()).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    };
    let keep_pairs = sorted_pairs(&lk, &rk);
    let swap_pairs = sorted_pairs(&rk, &lk);
    // The join output drops the *right* key columns, so the two
    // orientations only compute column-permutations of each other when
    // they drop equally many: with a duplicated key column (e.g.
    // `l0 = r1 AND l0 = r2`) the distinct-key counts differ and
    // swapping would change the output arity — keep the given
    // orientation then. (Compiled plans always have distinct keys per
    // side; this guards the public API on hand-built plans.)
    let distinct = |keys: &[usize]| {
        let mut k = keys.to_vec();
        k.sort_unstable();
        k.dedup();
        k.len()
    };
    let swappable = distinct(&lk) == distinct(&rk);
    let (kl, kr) = (plan_key(&cl), plan_key(&cr));
    let swap = swappable && (&kr, &kl, &swap_pairs) < (&kl, &kr, &keep_pairs);

    let (la, ra) = (ml.len(), mr.len());
    let mut mapping = Vec::with_capacity(la + ra - rk.len());
    if !swap {
        let pairs = keep_pairs;
        let rk_set: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
        // Original output: all left columns, then right non-key columns.
        mapping.extend(ml.iter().copied());
        // Rank of a canonical right position among its non-key columns.
        for &cpos in &mr {
            if !rk.contains(&cpos) {
                let rank = (0..cpos).filter(|p| !rk_set.contains(p)).count();
                mapping.push(la + rank);
            }
        }
        (
            Fra::HashJoin {
                left: Box::new(cl),
                right: Box::new(cr),
                left_keys: pairs.iter().map(|&(l, _)| l).collect(),
                right_keys: pairs.iter().map(|&(_, r)| r).collect(),
            },
            mapping,
        )
    } else {
        // Canonical plan is `cr ⋈ cl`; its output is all `cr` columns,
        // then `cl` columns minus the (old) left keys. An original left
        // key column's value equals its paired right key, which *is*
        // present in the canonical output (inside `cr`).
        let pairs = swap_pairs;
        let lk_set: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
        for &cpos in &ml {
            if let Some(k) = lk.iter().position(|&p| p == cpos) {
                mapping.push(rk[k]);
            } else {
                let rank = (0..cpos).filter(|p| !lk_set.contains(p)).count();
                mapping.push(ra + rank);
            }
        }
        for &cpos in &mr {
            if !rk.contains(&cpos) {
                mapping.push(cpos);
            }
        }
        (
            Fra::HashJoin {
                left: Box::new(cr),
                right: Box::new(cl),
                left_keys: pairs.iter().map(|&(l, _)| l).collect(),
                right_keys: pairs.iter().map(|&(_, r)| r).collect(),
            },
            mapping,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::value::Value;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    fn scan(var: &str, label: &str) -> Fra {
        Fra::ScanVertices {
            var: var.into(),
            labels: vec![s(label)],
            props: vec![],
            carry_map: false,
        }
    }

    /// Two-column scan: `[var, var.x]`.
    fn scan2(var: &str, label: &str) -> Fra {
        Fra::ScanVertices {
            var: var.into(),
            labels: vec![s(label)],
            props: vec![PropPush {
                prop: s("x"),
                col: format!("{var}.x"),
            }],
            carry_map: false,
        }
    }

    #[test]
    fn renamed_scans_canonicalise_identically() {
        let a = canonicalize(&scan("a", "Post"));
        let p = canonicalize(&scan("p", "Post"));
        assert_eq!(a, p);
        assert!(a.is_identity());
    }

    #[test]
    fn conjunct_order_is_erased() {
        let c0 = ScalarExpr::Binary(
            BinOp::Gt,
            Box::new(ScalarExpr::Col(0)),
            Box::new(ScalarExpr::lit(1)),
        );
        let c1 = ScalarExpr::Binary(
            BinOp::Lt,
            Box::new(ScalarExpr::Col(0)),
            Box::new(ScalarExpr::lit(9)),
        );
        let f = |p: ScalarExpr| Fra::Filter {
            input: Box::new(scan("x", "A")),
            predicate: p,
        };
        let ab = f(ScalarExpr::Binary(
            BinOp::And,
            Box::new(c0.clone()),
            Box::new(c1.clone()),
        ));
        let ba = f(ScalarExpr::Binary(BinOp::And, Box::new(c1), Box::new(c0)));
        assert_eq!(canonicalize(&ab), canonicalize(&ba));
    }

    #[test]
    fn adjacent_filters_fuse() {
        let pred = |lit: i64| {
            ScalarExpr::Binary(
                BinOp::Gt,
                Box::new(ScalarExpr::Col(0)),
                Box::new(ScalarExpr::lit(lit)),
            )
        };
        let stacked = Fra::Filter {
            input: Box::new(Fra::Filter {
                input: Box::new(scan("x", "A")),
                predicate: pred(1),
            }),
            predicate: pred(2),
        };
        let fused = Fra::Filter {
            input: Box::new(scan("x", "A")),
            predicate: ScalarExpr::Binary(BinOp::And, Box::new(pred(1)), Box::new(pred(2))),
        };
        assert_eq!(canonicalize(&stacked), canonicalize(&fused));
    }

    #[test]
    fn filter_sinks_below_projection() {
        // σ[c0 = 'en'] π[Col(1)] X  ≡  π[Col(1)] σ[c1 = 'en'] X.
        let base = Fra::ScanVertices {
            var: "p".into(),
            labels: vec![s("Post")],
            props: vec![PropPush {
                prop: s("lang"),
                col: "p.lang".into(),
            }],
            carry_map: false,
        };
        let eq_en = |col: usize| {
            ScalarExpr::Binary(
                BinOp::Eq,
                Box::new(ScalarExpr::Col(col)),
                Box::new(ScalarExpr::Lit(Value::str("en"))),
            )
        };
        let sigma_over_pi = Fra::Filter {
            input: Box::new(Fra::Project {
                input: Box::new(base.clone()),
                items: vec![(ScalarExpr::Col(1), "l".into())],
            }),
            predicate: eq_en(0),
        };
        let pi_over_sigma = Fra::Project {
            input: Box::new(Fra::Filter {
                input: Box::new(base),
                predicate: eq_en(1),
            }),
            items: vec![(ScalarExpr::Col(1), "l".into())],
        };
        assert_eq!(canonicalize(&sigma_over_pi), canonicalize(&pi_over_sigma));
    }

    #[test]
    fn join_operands_commute() {
        let j = |l: Fra, r: Fra| Fra::HashJoin {
            left: Box::new(l),
            right: Box::new(r),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        let ab = canonicalize(&j(scan("a", "A"), scan("b", "B")));
        let ba = canonicalize(&j(scan("b", "B"), scan("a", "A")));
        assert_eq!(ab.plan, ba.plan);
        // Output columns land permuted relative to each other; both
        // mappings are bijections onto the same canonical schema.
        assert_eq!(ab.mapping.len(), ba.mapping.len());
    }

    #[test]
    fn asymmetric_duplicate_join_keys_do_not_swap() {
        // `l0 = r1 AND l0 = r2`: the orientations drop different column
        // counts (1 distinct left key vs 2 distinct right keys), so the
        // canonicaliser must keep the given orientation; a swap would
        // change the output arity and corrupt the mapping.
        fn scan3(var: &str, label: &str) -> Fra {
            Fra::ScanVertices {
                var: var.into(),
                labels: vec![s(label)],
                props: vec![
                    PropPush {
                        prop: s("x"),
                        col: format!("{var}.x"),
                    },
                    PropPush {
                        prop: s("y"),
                        col: format!("{var}.y"),
                    },
                ],
                carry_map: false,
            }
        }
        let join = Fra::HashJoin {
            left: Box::new(scan3("a", "A")),
            right: Box::new(scan3("b", "B")),
            left_keys: vec![0, 0],
            right_keys: vec![1, 2],
        };
        let arity = join.schema().len();
        let canon = canonicalize(&join);
        assert_eq!(canon.plan.schema().len(), arity, "arity preserved");
        assert_eq!(canon.mapping.len(), arity);
        // And the renaming property still holds for this shape.
        let renamed = alpha_rename(&join, &mut |n| format!("{n}_z"));
        assert_eq!(canonicalize(&renamed), canon);
    }

    #[test]
    fn permutation_projection_vanishes() {
        // Output schema `[a, b.x]` (the right key column is dropped).
        let join = Fra::HashJoin {
            left: Box::new(scan("a", "A")),
            right: Box::new(scan2("b", "B")),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        let swapped = Fra::Project {
            input: Box::new(join.clone()),
            items: vec![
                (ScalarExpr::Col(1), "b".into()),
                (ScalarExpr::Col(0), "a".into()),
            ],
        };
        let canon_plain = canonicalize(&join);
        let canon_swapped = canonicalize(&swapped);
        assert_eq!(canon_plain.plan, canon_swapped.plan, "π vanished");
        assert!(!canon_swapped.is_identity());
        // Restoring the order adds exactly the tail projection.
        assert!(matches!(
            canon_swapped.with_restored_order(),
            Fra::Project { .. }
        ));
    }

    #[test]
    fn conjuncts_resplit_after_substitution_through_projection() {
        // A filter referencing a boolean projection item substitutes to
        // a nested AND; it must be re-split into individual conjuncts
        // or AND-order-equivalent plans canonicalise apart (and canon
        // stops being idempotent).
        let cmp = |col: usize, op: BinOp, lit: i64| {
            ScalarExpr::Binary(
                op,
                Box::new(ScalarExpr::Col(col)),
                Box::new(ScalarExpr::lit(lit)),
            )
        };
        let plan_with = |l: ScalarExpr, r: ScalarExpr| Fra::Filter {
            input: Box::new(Fra::Project {
                input: Box::new(scan2("p", "A")),
                items: vec![
                    (
                        ScalarExpr::Binary(BinOp::And, Box::new(l), Box::new(r)),
                        "f".into(),
                    ),
                    (ScalarExpr::Col(0), "p".into()),
                ],
            }),
            predicate: ScalarExpr::Col(0),
        };
        let a = plan_with(cmp(1, BinOp::Gt, 1), cmp(1, BinOp::Lt, 9));
        let b = plan_with(cmp(1, BinOp::Lt, 9), cmp(1, BinOp::Gt, 1));
        let (ca, cb) = (canonicalize(&a), canonicalize(&b));
        // The sunk σ predicate is split and sorted identically in both
        // orders. (The π *item* keeps its inner expression verbatim —
        // commutativity inside arbitrary expressions is out of scope.)
        let sigma_pred = |p: &Fra| match p {
            Fra::Project { input, .. } => match input.as_ref() {
                Fra::Filter { predicate, .. } => predicate.clone(),
                other => panic!("expected σ under π, got {other:?}"),
            },
            other => panic!("expected π root, got {other:?}"),
        };
        assert_eq!(
            sigma_pred(&ca.plan),
            sigma_pred(&cb.plan),
            "substituted conjuncts are re-split and sorted"
        );
        for c in [&ca, &cb] {
            let twice = canonicalize(&c.plan);
            assert_eq!(c.plan, twice.plan);
            assert!(twice.is_identity(), "idempotent after substitution");
        }
    }

    #[test]
    fn distinct_collapses() {
        let dd = Fra::Distinct {
            input: Box::new(Fra::Distinct {
                input: Box::new(scan("x", "A")),
            }),
        };
        let d = Fra::Distinct {
            input: Box::new(scan("x", "A")),
        };
        assert_eq!(canonicalize(&dd), canonicalize(&d));
    }

    #[test]
    fn canonicalisation_is_idempotent() {
        let plan = Fra::Distinct {
            input: Box::new(Fra::Project {
                input: Box::new(Fra::Filter {
                    input: Box::new(Fra::HashJoin {
                        left: Box::new(scan2("b", "B")),
                        right: Box::new(scan("a", "A")),
                        left_keys: vec![0],
                        right_keys: vec![0],
                    }),
                    predicate: ScalarExpr::Binary(
                        BinOp::Eq,
                        Box::new(ScalarExpr::Col(0)),
                        Box::new(ScalarExpr::Col(1)),
                    ),
                }),
                items: vec![(ScalarExpr::Col(1), "x".into())],
            }),
        };
        let once = canonicalize(&plan);
        let twice = canonicalize(&once.plan);
        assert_eq!(once.plan, twice.plan);
        assert!(twice.is_identity(), "re-canonicalisation is the identity");
    }

    #[test]
    fn alpha_rename_is_erased() {
        let plan = Fra::Project {
            input: Box::new(Fra::HashJoin {
                left: Box::new(scan("a", "A")),
                right: Box::new(scan2("b", "B")),
                left_keys: vec![0],
                right_keys: vec![0],
            }),
            items: vec![(ScalarExpr::Col(1), "bx".into())],
        };
        let renamed = alpha_rename(&plan, &mut |n| format!("{n}_renamed"));
        assert_ne!(plan, renamed, "rename changed the surface plan");
        assert_eq!(canonicalize(&plan), canonicalize(&renamed));
    }
}
