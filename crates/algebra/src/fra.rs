//! Flat relational algebra (FRA) — the paper's step-3 representation.
//!
//! FRA is positional and *self-contained*: after schema inference every
//! property the query needs has been pushed down into the base scans
//! (`©(p:Post{lang→pL})` in the paper's notation), so all higher
//! operators are pure functions of their input tuples. This is the
//! representation both engines execute: the IVM network maintains it
//! incrementally, and the baseline evaluator recomputes it from scratch.

use pgq_common::dir::Direction;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;

use crate::expr::{AggCall, ScalarExpr};

pub use crate::gra::VarLen;

/// Column name of the full-property-map column used by the no-push-down
/// ablation mode.
pub fn map_col(var: &str) -> String {
    format!("{var}.__map")
}

/// A property pushed down into a base scan: fetch `prop` of the scanned
/// element and expose it as output column `col`.
#[derive(Clone, Debug, PartialEq)]
pub struct PropPush {
    /// Property key.
    pub prop: Symbol,
    /// Output column name.
    pub col: String,
}

/// Specification of the edges traversed by a variable-length join.
#[derive(Clone, Debug, PartialEq)]
pub struct VarLenSpec {
    /// Admissible edge types (empty = any).
    pub types: Vec<Symbol>,
    /// Orientation of each hop.
    pub dir: Direction,
    /// Labels required of the destination vertex.
    pub dst_labels: Vec<Symbol>,
    /// Properties of the destination pushed into the output.
    pub dst_props: Vec<PropPush>,
    /// Ablation mode: carry the destination's whole property map.
    pub dst_carry_map: bool,
    /// Literal equality constraints on every traversed edge.
    pub edge_prop_filters: Vec<(Symbol, Value)>,
    /// Minimum hops.
    pub min: u32,
    /// Maximum hops (`None` = unbounded).
    pub max: Option<u32>,
}

/// An FRA operator tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Fra {
    /// Single empty tuple.
    Unit,
    /// © with pushed-down properties. Schema: `[var, props..., var.__map?]`.
    ScanVertices {
        /// Bound variable.
        var: String,
        /// Required labels (conjunctive).
        labels: Vec<Symbol>,
        /// Pushed-down properties.
        props: Vec<PropPush>,
        /// Ablation mode (no schema inference): carry the whole property
        /// map as an extra column `var.__map` instead of pushed columns.
        carry_map: bool,
    },
    /// ⇑ with pushed-down properties.
    /// Schema: `[src, edge, dst, src_props..., edge_props..., dst_props...]`.
    ScanEdges {
        /// Source variable.
        src: String,
        /// Edge variable.
        edge: String,
        /// Target variable.
        dst: String,
        /// Admissible edge types.
        types: Vec<Symbol>,
        /// Labels required on the source.
        src_labels: Vec<Symbol>,
        /// Labels required on the target.
        dst_labels: Vec<Symbol>,
        /// Pushed source-vertex properties.
        src_props: Vec<PropPush>,
        /// Pushed edge properties.
        edge_props: Vec<PropPush>,
        /// Pushed target-vertex properties.
        dst_props: Vec<PropPush>,
        /// Orientation (`Both` emits each edge in both orientations).
        dir: Direction,
        /// Ablation mode: carry whole property maps (`src.__map`,
        /// `edge.__map`, `dst.__map`) for the listed positions.
        carry_maps: (bool, bool, bool),
    },
    /// ⋉ / ▷ semijoin / antijoin. Schema: identical to the left input.
    SemiJoin {
        /// Left input.
        left: Box<Fra>,
        /// Right (existence) input.
        right: Box<Fra>,
        /// Key columns in the left schema.
        left_keys: Vec<usize>,
        /// Matching key columns in the right schema.
        right_keys: Vec<usize>,
        /// Antijoin (`NOT exists`)?
        anti: bool,
    },
    /// Hash join; `keys` are column positions equated pairwise.
    /// Schema: left ++ (right minus its key columns).
    HashJoin {
        /// Left input.
        left: Box<Fra>,
        /// Right input.
        right: Box<Fra>,
        /// Key columns in the left schema.
        left_keys: Vec<usize>,
        /// Matching key columns in the right schema.
        right_keys: Vec<usize>,
    },
    /// ⋈* variable-length (transitive) join.
    /// Schema: left ++ `[dst, dst_props..., path]`.
    VarLengthJoin {
        /// Left input.
        left: Box<Fra>,
        /// Column of the left schema to start traversal from.
        src_col: usize,
        /// Edge traversal specification.
        spec: VarLenSpec,
        /// Output name for the destination vertex.
        dst: String,
        /// Output name for the materialised (atomic) path.
        path: String,
    },
    /// σ.
    Filter {
        /// Input.
        input: Box<Fra>,
        /// Predicate over the input schema.
        predicate: ScalarExpr,
    },
    /// π (generalised projection; also used to rebind path columns).
    Project {
        /// Input.
        input: Box<Fra>,
        /// `(expression, output name)` pairs.
        items: Vec<(ScalarExpr, String)>,
    },
    /// δ duplicate elimination (bag → set).
    Distinct {
        /// Input.
        input: Box<Fra>,
    },
    /// γ grouping aggregation. Schema: group names ++ agg names.
    Aggregate {
        /// Input.
        input: Box<Fra>,
        /// Group-by expressions.
        group: Vec<(ScalarExpr, String)>,
        /// Aggregate calls.
        aggs: Vec<(AggCall, String)>,
    },
    /// ω unwind. Schema: input ++ `[alias]`.
    Unwind {
        /// Input.
        input: Box<Fra>,
        /// List-valued expression over the input schema.
        expr: ScalarExpr,
        /// Introduced column.
        alias: String,
    },
    /// ⨝ⁿ worst-case optimal n-ary join (leapfrog/generic join).
    ///
    /// Each input's columns are mapped onto *variables*; two columns
    /// (of the same or different inputs) mapped to the same variable
    /// are equated. Variable ids double as the global elimination
    /// order the operator binds variables in (0 first), chosen by the
    /// planner from cardinality estimates. Schema: one column per
    /// variable, `names[v]` at position `v`.
    MultiwayJoin {
        /// The joined relations (≥ 2 in well-formed plans).
        inputs: Vec<Fra>,
        /// `var_of[i][c]` = variable id of input `i`'s column `c`.
        /// Every variable in `0..names.len()` occurs in some input.
        var_of: Vec<Vec<usize>>,
        /// Output column names, one per variable.
        names: Vec<String>,
    },
}

impl Fra {
    /// Output column names, in positional order.
    pub fn schema(&self) -> Vec<String> {
        match self {
            Fra::Unit => vec![],
            Fra::ScanVertices {
                var,
                props,
                carry_map,
                ..
            } => {
                let mut s = vec![var.clone()];
                s.extend(props.iter().map(|p| p.col.clone()));
                if *carry_map {
                    s.push(map_col(var));
                }
                s
            }
            Fra::ScanEdges {
                src,
                edge,
                dst,
                src_props,
                edge_props,
                dst_props,
                carry_maps,
                ..
            } => {
                let mut s = vec![src.clone(), edge.clone(), dst.clone()];
                s.extend(src_props.iter().map(|p| p.col.clone()));
                s.extend(edge_props.iter().map(|p| p.col.clone()));
                s.extend(dst_props.iter().map(|p| p.col.clone()));
                if carry_maps.0 {
                    s.push(map_col(src));
                }
                if carry_maps.1 {
                    s.push(map_col(edge));
                }
                if carry_maps.2 {
                    s.push(map_col(dst));
                }
                s
            }
            Fra::HashJoin {
                left,
                right,
                right_keys,
                ..
            } => {
                let mut s = left.schema();
                for (i, col) in right.schema().into_iter().enumerate() {
                    if !right_keys.contains(&i) {
                        s.push(col);
                    }
                }
                s
            }
            Fra::VarLengthJoin {
                left,
                spec,
                dst,
                path,
                ..
            } => {
                let mut s = left.schema();
                s.push(dst.clone());
                s.extend(spec.dst_props.iter().map(|p| p.col.clone()));
                if spec.dst_carry_map {
                    s.push(map_col(dst));
                }
                s.push(path.clone());
                s
            }
            Fra::SemiJoin { left, .. } => left.schema(),
            Fra::Filter { input, .. } | Fra::Distinct { input } => input.schema(),
            Fra::Project { items, .. } => items.iter().map(|(_, n)| n.clone()).collect(),
            Fra::Aggregate { group, aggs, .. } => group
                .iter()
                .map(|(_, n)| n.clone())
                .chain(aggs.iter().map(|(_, n)| n.clone()))
                .collect(),
            Fra::Unwind { input, alias, .. } => {
                let mut s = input.schema();
                s.push(alias.clone());
                s
            }
            Fra::MultiwayJoin { names, .. } => names.clone(),
        }
    }

    /// Number of operators in the tree (for plan statistics).
    pub fn operator_count(&self) -> usize {
        1 + match self {
            Fra::Unit | Fra::ScanVertices { .. } | Fra::ScanEdges { .. } => 0,
            Fra::HashJoin { left, right, .. } | Fra::SemiJoin { left, right, .. } => {
                left.operator_count() + right.operator_count()
            }
            Fra::VarLengthJoin { left, .. } => left.operator_count(),
            Fra::Filter { input, .. }
            | Fra::Project { input, .. }
            | Fra::Distinct { input }
            | Fra::Aggregate { input, .. }
            | Fra::Unwind { input, .. } => input.operator_count(),
            Fra::MultiwayJoin { inputs, .. } => inputs.iter().map(Fra::operator_count).sum(),
        }
    }

    /// Total width (columns) summed over all operators — the metric the
    /// push-down ablation (experiment E10) reports.
    pub fn total_width(&self) -> usize {
        let mine = self.schema().len();
        mine + match self {
            Fra::Unit | Fra::ScanVertices { .. } | Fra::ScanEdges { .. } => 0,
            Fra::HashJoin { left, right, .. } | Fra::SemiJoin { left, right, .. } => {
                left.total_width() + right.total_width()
            }
            Fra::VarLengthJoin { left, .. } => left.total_width(),
            Fra::Filter { input, .. }
            | Fra::Project { input, .. }
            | Fra::Distinct { input }
            | Fra::Aggregate { input, .. }
            | Fra::Unwind { input, .. } => input.total_width(),
            Fra::MultiwayJoin { inputs, .. } => inputs.iter().map(Fra::total_width).sum(),
        }
    }
}
