//! Property suite for plan canonicalisation: `canon(p) == canon(rename(p))`
//! for arbitrary consistent alpha-renamings, over the full compiled query
//! pool — plus the structural invariants the network's hash-consing
//! relies on (bijective mappings, idempotence, stable arity).

use std::collections::HashMap;

use pgq_algebra::canon::{alpha_rename, canonicalize};
use pgq_algebra::fra::Fra;
use pgq_algebra::pipeline::compile_query;
use pgq_parser::parse_query;
use proptest::prelude::*;

/// Queries covering every FRA operator: scans, joins, ⋈*, σ, π, δ, γ, ω,
/// semijoins/antijoins.
const QUERIES: &[&str] = &[
    "MATCH (p:Post) RETURN p",
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p, p.lang",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN c, p",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = 'en' AND c.lang = 'de' RETURN p",
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
    "MATCH (a)-[:REPLY*1..3]->(b:Comm) RETURN a, b",
    "MATCH (p:Post) RETURN DISTINCT p.lang",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN n",
    "MATCH (p:Post) WHERE NOT exists((p)-[:REPLY]->(:Comm)) RETURN p",
    "MATCH (p:Post) WHERE exists((p)-[:REPLY]->(:Comm {lang: 'en'})) RETURN p",
    "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.age > 30 AND b.age > 40 RETURN a, b",
];

fn compiled(ix: usize) -> Fra {
    compile_query(&parse_query(QUERIES[ix % QUERIES.len()]).unwrap())
        .unwrap()
        .fra
}

/// A consistent, injective renaming: every distinct name gets a fresh
/// name decorated with a per-name random salt.
fn renamer(salts: Vec<u32>) -> impl FnMut(&str) -> String {
    let mut seen: HashMap<String, String> = HashMap::new();
    move |name: &str| {
        let next = seen.len();
        seen.entry(name.to_string())
            .or_insert_with(|| {
                let salt = salts[next % salts.len().max(1)];
                format!("r{next}_{salt}")
            })
            .clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// The headline property: canonicalisation erases any alpha-renaming
    /// — the canonical plan AND the column mapping are unchanged, so a
    /// renamed duplicate hash-conses onto the original's nodes.
    #[test]
    fn canon_erases_random_renamings(
        query_ix in 0..QUERIES.len(),
        salts in proptest::collection::vec(0u32..1000, 1..8),
    ) {
        let fra = compiled(query_ix);
        let mut rename = renamer(salts);
        let renamed = alpha_rename(&fra, &mut rename);
        let base = canonicalize(&fra);
        let re = canonicalize(&renamed);
        prop_assert_eq!(&base.plan, &re.plan, "canonical plans diverge under renaming");
        prop_assert_eq!(&base.mapping, &re.mapping, "column mappings diverge under renaming");
        // Renamed duplicates therefore share the same fingerprint.
        prop_assert_eq!(
            base.with_restored_order().fingerprint(),
            re.with_restored_order().fingerprint()
        );
    }

    /// The mapping is a bijection of the plan's arity, and restoring the
    /// original order yields the original schema width.
    #[test]
    fn mapping_is_a_bijection(query_ix in 0..QUERIES.len()) {
        let fra = compiled(query_ix);
        let canon = canonicalize(&fra);
        let arity = fra.schema().len();
        prop_assert_eq!(canon.mapping.len(), arity);
        prop_assert_eq!(canon.plan.schema().len(), arity);
        let mut seen = vec![false; arity];
        for &j in &canon.mapping {
            prop_assert!(j < arity, "mapping out of range");
            prop_assert!(!seen[j], "mapping not injective");
            seen[j] = true;
        }
        prop_assert_eq!(canon.with_restored_order().schema().len(), arity);
    }

    /// Canonicalisation is idempotent: re-canonicalising a canonical
    /// plan is the identity (same plan, identity mapping) — the property
    /// that makes consing on canonical forms stable.
    #[test]
    fn canon_is_idempotent(query_ix in 0..QUERIES.len()) {
        let once = canonicalize(&compiled(query_ix));
        let twice = canonicalize(&once.plan);
        prop_assert_eq!(&once.plan, &twice.plan);
        prop_assert!(twice.is_identity());
    }
}

/// Textually alpha-renamed Cypher queries compile to plans that
/// canonicalise identically — end-to-end through the parser and all
/// three pipeline stages.
#[test]
fn renamed_cypher_queries_canonicalise_identically() {
    let pairs = [
        ("MATCH (a:Post) RETURN a", "MATCH (p:Post) RETURN p"),
        (
            "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
            "MATCH (x:Post)-[:REPLY]->(y:Comm) RETURN x, y",
        ),
        (
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = 'en' AND c.lang = 'de' RETURN p",
            "MATCH (q:Post)-[:REPLY]->(d:Comm) WHERE d.lang = 'de' AND q.lang = 'en' RETURN q",
        ),
        (
            "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
            "MATCH u = (a:Post)-[:REPLY*]->(b:Comm) WHERE a.lang = b.lang RETURN a, u",
        ),
    ];
    for (a, b) in pairs {
        let fa = compile_query(&parse_query(a).unwrap()).unwrap().fra;
        let fb = compile_query(&parse_query(b).unwrap()).unwrap().fra;
        let (ca, cb) = (canonicalize(&fa), canonicalize(&fb));
        assert_eq!(ca.plan, cb.plan, "{a}  vs  {b}");
        assert_eq!(ca.mapping, cb.mapping, "{a}  vs  {b}");
    }
}

/// Queries that differ in more than renaming must NOT be conflated.
#[test]
fn semantically_different_queries_stay_apart() {
    let pairs = [
        ("MATCH (a:Post) RETURN a", "MATCH (a:Comm) RETURN a"),
        (
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = 'en' RETURN p",
            "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = 'de' RETURN p",
        ),
        (
            "MATCH (p:Post) RETURN DISTINCT p.lang",
            "MATCH (p:Post) RETURN p.lang",
        ),
    ];
    for (a, b) in pairs {
        let fa = compile_query(&parse_query(a).unwrap()).unwrap().fra;
        let fb = compile_query(&parse_query(b).unwrap()).unwrap().fra;
        assert_ne!(
            canonicalize(&fa).plan,
            canonicalize(&fb).plan,
            "{a}  vs  {b}"
        );
    }
}
