//! Property suite for the cost-based planner: planning never breaks
//! alpha-sharing (`canon(plan(q)) == canon(plan(rename(q)))` for any
//! consistent renaming and any statistics snapshot), always preserves
//! the output schema, and is deterministic.

use std::collections::HashMap;

use pgq_algebra::canon::{alpha_rename, canonicalize};
use pgq_algebra::fra::Fra;
use pgq_algebra::pipeline::compile_query;
use pgq_algebra::plan::{plan, PlanStats};
use pgq_common::intern::Symbol;
use pgq_parser::parse_query;
use proptest::prelude::*;

/// Queries covering every FRA operator, including multi-relation join
/// trees the planner actually reorders.
const QUERIES: &[&str] = &[
    "MATCH (p:Post) RETURN p",
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p, p.lang",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
    "MATCH (a)-[:REPLY*1..3]->(b:Comm) RETURN a, b",
    "MATCH (p:Post) RETURN DISTINCT p.lang",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH (p:Post) WHERE NOT exists((p)-[:REPLY]->(:Comm)) RETURN p",
    "MATCH (p:Post) WHERE exists((p)-[:REPLY]->(:Comm {lang: 'en'})) RETURN p",
    "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.age > 30 AND b.age > 40 RETURN a, b",
    "MATCH (a:User)-[:FOLLOWS]->(b:User) MATCH (b)-[:LIKES]->(p:Post) \
     MATCH (p)-[:TAGGED]->(t:Topic) WHERE t.name = 'rare' RETURN a, p",
    "MATCH (a:Person)-[:CREATED]->(p:Post) MATCH (a)-[:KNOWS]->(b:Person) \
     MATCH (b)-[:LIKES]->(p) RETURN a, b, p",
    "MATCH (a:Person)-[:KNOWS]->(b:Person) MATCH t = (b)-[:REPLY*]->(c:Comm) \
     WHERE c.lang = 'en' RETURN a, c",
];

fn compiled(ix: usize) -> Fra {
    compile_query(&parse_query(QUERIES[ix % QUERIES.len()]).unwrap())
        .unwrap()
        .fra
}

/// A statistics snapshot parameterised by proptest-chosen counts, so
/// planning decisions vary across cases.
fn stats_from(counts: &[u64]) -> PlanStats {
    let pick = |i: usize| counts[i % counts.len().max(1)].max(1);
    let mut st = PlanStats {
        vertices: 1 + counts.iter().sum::<u64>() * 10,
        edges: 1 + counts.iter().sum::<u64>() * 30,
        ..PlanStats::default()
    };
    for (i, label) in ["Post", "Comm", "Person", "User", "Topic"]
        .iter()
        .enumerate()
    {
        st.label_counts.insert(Symbol::intern(label), pick(i) * 10);
    }
    for (i, ty) in ["REPLY", "KNOWS", "LIKES", "FOLLOWS", "TAGGED", "CREATED"]
        .iter()
        .enumerate()
    {
        let t = Symbol::intern(ty);
        st.type_counts.insert(t, pick(i + 3) * 40);
        st.type_distinct_src.insert(t, pick(i + 5) * 3);
        st.type_distinct_dst.insert(t, pick(i + 7) * 2);
    }
    for (i, key) in ["lang", "name", "age", "cat"].iter().enumerate() {
        st.vertex_prop_distinct
            .insert(Symbol::intern(key), pick(i + 2));
    }
    st
}

/// A consistent, injective renaming (as in the canon suite).
fn renamer(salts: Vec<u32>) -> impl FnMut(&str) -> String {
    let mut seen: HashMap<String, String> = HashMap::new();
    move |name: &str| {
        let next = seen.len();
        seen.entry(name.to_string())
            .or_insert_with(|| {
                let salt = salts[next % salts.len().max(1)];
                format!("r{next}_{salt}")
            })
            .clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// The headline sharing property: planning is alpha-insensitive, so
    /// planned twins of renamed queries still canonicalise (and hence
    /// hash-cons) identically under ANY statistics snapshot.
    #[test]
    fn canon_of_plan_is_rename_invariant(
        query_ix in 0..QUERIES.len(),
        salts in proptest::collection::vec(0u32..1000, 1..8),
        counts in proptest::collection::vec(1u64..5000, 1..10),
    ) {
        let stats = stats_from(&counts);
        let fra = compiled(query_ix);
        let mut rename = renamer(salts);
        let renamed = alpha_rename(&fra, &mut rename);
        let planned = plan(&fra, &stats);
        let planned_renamed = plan(&renamed, &stats);
        let base = canonicalize(&planned.fra);
        let re = canonicalize(&planned_renamed.fra);
        prop_assert_eq!(
            &base.plan, &re.plan,
            "canon(plan(q)) != canon(plan(rename(q))) for {}", QUERIES[query_ix % QUERIES.len()]
        );
        prop_assert_eq!(&base.mapping, &re.mapping);
    }

    /// Planning always preserves the output schema (names and order),
    /// whatever the statistics say.
    #[test]
    fn plan_preserves_schema(
        query_ix in 0..QUERIES.len(),
        counts in proptest::collection::vec(1u64..5000, 1..10),
    ) {
        let fra = compiled(query_ix);
        let planned = plan(&fra, &stats_from(&counts));
        prop_assert_eq!(planned.fra.schema(), fra.schema());
    }

    /// Planning is deterministic: the same plan and snapshot always
    /// produce the same result (the property consing stability rests
    /// on).
    #[test]
    fn plan_is_deterministic(
        query_ix in 0..QUERIES.len(),
        counts in proptest::collection::vec(1u64..5000, 1..10),
    ) {
        let stats = stats_from(&counts);
        let fra = compiled(query_ix);
        let a = plan(&fra, &stats);
        let b = plan(&fra, &stats);
        prop_assert_eq!(a.fra, b.fra);
        prop_assert_eq!(a.changed, b.changed);
    }
}
