//! Engine-level errors.

use std::fmt;

use pgq_algebra::AlgebraError;
use pgq_graph::store::GraphError;
use pgq_parser::ParseError;

/// Anything that can go wrong when driving the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query text failed to parse.
    Parse(ParseError),
    /// The query failed to compile (outside the fragment, unknown
    /// variables, or not incrementally maintainable when registering a
    /// view).
    Algebra(AlgebraError),
    /// The store rejected an update.
    Graph(GraphError),
    /// Referenced view does not exist.
    UnknownView,
    /// A view with this name already exists.
    DuplicateView(String),
    /// Valid Cypher the engine's update interpreter does not support.
    Unsupported(String),
    /// The durability layer failed (WAL append, snapshot write, or a
    /// corrupt snapshot at recovery). Carries a rendered message so the
    /// error stays `Clone + PartialEq` like its siblings.
    Durability(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Algebra(e) => write!(f, "{e}"),
            EngineError::Graph(e) => write!(f, "{e}"),
            EngineError::UnknownView => write!(f, "unknown view"),
            EngineError::DuplicateView(n) => write!(f, "view `{n}` already exists"),
            EngineError::Unsupported(s) => write!(f, "unsupported: {s}"),
            EngineError::Durability(s) => write!(f, "durability: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<AlgebraError> for EngineError {
    fn from(e: AlgebraError) -> Self {
        EngineError::Algebra(e)
    }
}
impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}
