//! Engine-level errors.

use std::fmt;

use pgq_algebra::AlgebraError;
use pgq_durability::DurabilityError;
use pgq_graph::store::GraphError;
use pgq_parser::ParseError;

/// Anything that can go wrong when driving the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query text failed to parse.
    Parse(ParseError),
    /// The query failed to compile (outside the fragment, unknown
    /// variables, or not incrementally maintainable when registering a
    /// view).
    Algebra(AlgebraError),
    /// The store rejected an update.
    Graph(GraphError),
    /// Referenced view does not exist.
    UnknownView,
    /// A view with this name already exists.
    DuplicateView(String),
    /// Valid Cypher the engine's update interpreter does not support.
    Unsupported(String),
    /// The durability layer failed. The commit that hit this error did
    /// **not** happen: the in-memory state was rolled back along with
    /// the WAL, and the engine stays usable. The typed payload says what
    /// was attempted and how it failed.
    Durability(DurabilityError),
    /// The engine is in read-only degraded mode: repeated durability
    /// failures (see [`EngineError::Durability`]) tripped the breaker.
    /// Queries and views keep working; updates are refused until an
    /// operator clears the condition (fix the disk, then
    /// `reset_durability`). Carries the failure that tripped it.
    ReadOnly(DurabilityError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Algebra(e) => write!(f, "{e}"),
            EngineError::Graph(e) => write!(f, "{e}"),
            EngineError::UnknownView => write!(f, "unknown view"),
            EngineError::DuplicateView(n) => write!(f, "view `{n}` already exists"),
            EngineError::Unsupported(s) => write!(f, "unsupported: {s}"),
            EngineError::Durability(e) => write!(f, "durability: {e}"),
            EngineError::ReadOnly(e) => {
                write!(f, "engine is read-only (degraded after: {e})")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DurabilityError> for EngineError {
    fn from(e: DurabilityError) -> Self {
        EngineError::Durability(e)
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<AlgebraError> for EngineError {
    fn from(e: AlgebraError) -> Self {
        EngineError::Algebra(e)
    }
}
impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}
