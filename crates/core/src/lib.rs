#![warn(missing_docs)]
//! # pgq-core
//!
//! Public façade of the pgq stack: [`GraphEngine`] combines the property
//! graph store, the openCypher front-end, the GRA→NRA→FRA compilation
//! pipeline and the IVM network behind one API:
//!
//! ```
//! use pgq_core::GraphEngine;
//!
//! let mut engine = GraphEngine::new();
//! engine.execute("CREATE (:Post {lang: 'en'})-[:REPLY]->(:Comm {lang: 'en'})").unwrap();
//! let view = engine
//!     .register_view(
//!         "same-lang",
//!         "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
//!     )
//!     .unwrap();
//! assert_eq!(engine.view_results(view).unwrap().len(), 1);
//! ```
//!
//! ## The shared dataflow network
//!
//! Every registered view is served by **one engine-owned
//! [`DataflowNetwork`](pgq_ivm::DataflowNetwork)** (an arena-allocated
//! operator DAG), not a private operator tree per view:
//!
//! * [`GraphEngine::register_view`] compiles the query to FRA and
//!   instantiates its plan bottom-up with hash-consing — any subplan
//!   structurally identical (by canonical
//!   [fingerprint](pgq_algebra::fingerprint) plus full equality) to an
//!   already-instantiated one is **shared**, and the new view becomes a
//!   refcounted sink whose initial results are replayed from the shared
//!   node's memories.
//! * Each committed transaction is propagated in one topologically
//!   scheduled pass; change events are **routed** by vertex label /
//!   edge type (with property-key interest) to only the scan nodes that
//!   can match them, and per-edge delta buffers come from a
//!   transaction-scoped **pool**, so steady-state maintenance cost
//!   tracks affected state rather than the number of registered views.
//! * [`GraphEngine::drop_view`] removes the sink and releases exactly
//!   the operator nodes no surviving view reaches.
//!
//! Inspect the live network with [`GraphEngine::network`] /
//! [`GraphEngine::network_node_count`] and per-view statistics with
//! [`GraphEngine::view_stats`].

pub mod engine;
pub mod error;
pub mod subscribe;

pub use engine::{
    BatchSummary, DurabilityHealth, ExecutionResult, GraphEngine, UpdateStats, ViewId,
};
pub use error::EngineError;
pub use subscribe::ViewDelta;
