#![warn(missing_docs)]
//! # pgq-core
//!
//! Public façade of the pgq stack: [`GraphEngine`] combines the property
//! graph store, the openCypher front-end, the GRA→NRA→FRA compilation
//! pipeline and the IVM network behind one API:
//!
//! ```
//! use pgq_core::GraphEngine;
//!
//! let mut engine = GraphEngine::new();
//! engine.execute("CREATE (:Post {lang: 'en'})-[:REPLY]->(:Comm {lang: 'en'})").unwrap();
//! let view = engine
//!     .register_view(
//!         "same-lang",
//!         "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
//!     )
//!     .unwrap();
//! assert_eq!(engine.view_results(view).unwrap().len(), 1);
//! ```

pub mod engine;
pub mod error;
pub mod subscribe;

pub use engine::{ExecutionResult, GraphEngine, UpdateStats, ViewId};
pub use error::EngineError;
pub use subscribe::ViewDelta;
