//! Active-query subscriptions — the "active graph database" behaviour of
//! Graphflow (Kankanamge et al., SIGMOD'17), which the paper discusses as
//! the closest related system: a registered callback fires with the
//! view's delta after every transaction that changes it.

use pgq_common::tuple::Tuple;

/// A change notification delivered to subscribers.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewDelta {
    /// Name of the view that changed.
    pub view: String,
    /// Rows that entered the result (with multiplicities).
    pub inserted: Vec<(Tuple, i64)>,
    /// Rows that left the result (multiplicities positive).
    pub removed: Vec<(Tuple, i64)>,
}

impl ViewDelta {
    /// Build from a consolidated delta.
    pub fn from_delta(view: &str, delta: &pgq_ivm::Delta) -> ViewDelta {
        let mut inserted = Vec::new();
        let mut removed = Vec::new();
        for (t, m) in delta.iter() {
            if *m > 0 {
                inserted.push((t.clone(), *m));
            } else if *m < 0 {
                removed.push((t.clone(), -m));
            }
        }
        ViewDelta {
            view: view.to_string(),
            inserted,
            removed,
        }
    }

    /// Is there anything in it?
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }
}

/// Subscriber callback type.
pub type Subscriber = Box<dyn FnMut(&ViewDelta) + Send>;

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_common::value::Value;

    #[test]
    fn splits_signs() {
        let delta: pgq_ivm::Delta = [
            (Tuple::new(vec![Value::Int(1)]), 2),
            (Tuple::new(vec![Value::Int(2)]), -1),
        ]
        .into_iter()
        .collect();
        let vd = ViewDelta::from_delta("v", &delta);
        assert_eq!(vd.inserted.len(), 1);
        assert_eq!(vd.inserted[0].1, 2);
        assert_eq!(vd.removed.len(), 1);
        assert_eq!(vd.removed[0].1, 1);
        assert!(!vd.is_empty());
    }
}
