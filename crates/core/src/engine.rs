//! The `GraphEngine` façade: graph + views + openCypher execution.

use pgq_algebra::flatten::SchemaMode;
use pgq_algebra::pipeline::{compile_bindings, compile_query_with, CompileOptions, CompiledQuery};
use pgq_algebra::plan::WcojMode;
use pgq_algebra::AlgebraError;
use pgq_common::intern::Symbol;
use pgq_common::pool::WorkerPool;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_durability::recovery::{self, RecoveryReport};
use pgq_durability::snapshot::snap_file;
use pgq_durability::wal::{self, wal_file};
use pgq_durability::{DurOp, DurabilityError, FsyncMode, Snapshot, SnapshotView, StdVfs, Vfs};
use pgq_graph::delta::ChangeEvent;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::{NodeRef, Transaction};
use pgq_ivm::{
    DataflowNetwork, Delta, RegisterOptions, RestoreStates, SinkId, TxFootprint, ViewRef,
};
use pgq_parser::ast::{Clause, Expr, Pattern, Query, RemoveItem, SetItem};
use pgq_parser::parse_query;
use std::sync::Arc;

use crate::error::EngineError;
use crate::subscribe::{Subscriber, ViewDelta};

/// Handle of a registered view.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ViewId(usize);

#[derive(Clone)]
struct ViewEntry {
    sink: SinkId,
    compiled: CompiledQuery,
    query_text: String,
    /// Compile/register options, kept so a durable snapshot can
    /// re-register the view mode-faithfully at recovery.
    compile: CompileOptions,
    register: RegisterOptions,
}

/// Durability state of an engine opened via
/// [`GraphEngine::open_durable`]: the storage handle, the active WAL
/// generation, and the failure breaker behind read-only degradation.
struct Durable {
    vfs: Arc<dyn Vfs>,
    /// Active WAL generation: appends go to `wal.<generation>`, and
    /// compacting snapshots switch to `generation + 1`.
    generation: u64,
    /// Records currently in the active generation's log (including
    /// records a non-compact snapshot already subsumes).
    wal_records: u64,
    /// Valid byte length of the active log — the engine's mirror of the
    /// on-disk file, used to rewrite the tail after a failed append.
    wal_len: u64,
    /// Compaction armed (`PGQ_WAL_COMPACT`, default on): every snapshot
    /// switches generations and deletes the subsumed log, keeping disk
    /// usage O(churn since last snapshot). Off, the single generation-0
    /// log grows forever and snapshots store a replay-skip count (the
    /// pre-compaction behaviour, kept for A/B measurement).
    compact: bool,
    /// Commit flush policy (`PGQ_FSYNC`).
    fsync: FsyncMode,
    /// Group-commit window under [`FsyncMode::Always`]
    /// (`PGQ_FLUSH_WINDOW`, default 1): `sync_data` once every `n`
    /// commits instead of per commit. `n > 1` trades a bounded loss
    /// window (up to `n - 1` acknowledged commits on power loss) for
    /// amortised sync cost; `apply_batch` always coalesces onto one
    /// sync per batch regardless.
    flush_window: u64,
    /// Commits appended since the last successful sync.
    unsynced: u64,
    /// Auto-snapshot cadence in committed transactions
    /// (`PGQ_SNAPSHOT_EVERY`; `0` disables the cadence, leaving only
    /// registration-change and explicit snapshots).
    snapshot_every: u64,
    txs_since_snapshot: u64,
    /// Consecutive failed commits; resets on success.
    fail_streak: u64,
    /// Failed commits tolerated before the engine degrades to
    /// read-only.
    max_failures: u64,
    /// When set, the engine is read-only: the durability failure that
    /// tripped the breaker. Cleared by
    /// [`GraphEngine::reset_durability`].
    degraded: Option<DurabilityError>,
    /// Most recent durability failure (including non-fatal ones, e.g. a
    /// failed cadence snapshot whose commit was already durable).
    last_error: Option<DurabilityError>,
    /// What recovery found and repaired when this engine opened.
    recovery: RecoveryReport,
}

/// Operator-facing durability status (see
/// [`GraphEngine::durability_health`]).
#[derive(Clone, Debug)]
pub struct DurabilityHealth {
    /// Read-only degraded, and why. `None` = healthy, writable.
    pub degraded: Option<DurabilityError>,
    /// Consecutive failed commits.
    pub fail_streak: u64,
    /// Most recent durability failure of any kind.
    pub last_error: Option<DurabilityError>,
    /// Active WAL generation.
    pub generation: u64,
    /// Records in the active generation's log.
    pub wal_records: u64,
    /// Valid bytes in the active generation's log.
    pub wal_len: u64,
    /// Is generation-switching compaction armed?
    pub compact: bool,
    /// Group-commit flush window.
    pub flush_window: u64,
}

fn snapshot_every_from_env() -> u64 {
    std::env::var("PGQ_SNAPSHOT_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// Strict parse of `PGQ_WAL_COMPACT` (default: on).
fn compact_from_env() -> Result<bool, DurabilityError> {
    let Ok(v) = std::env::var("PGQ_WAL_COMPACT") else {
        return Ok(true);
    };
    match v.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "always" | "" => Ok(true),
        "0" | "false" | "never" => Ok(false),
        other => Err(DurabilityError::config(format!(
            "unrecognized PGQ_WAL_COMPACT value `{other}` (expected `1` or `0`)"
        ))),
    }
}

/// Strict parse of `PGQ_FLUSH_WINDOW` (default: 1 = sync every commit
/// under `PGQ_FSYNC=always`).
fn flush_window_from_env() -> Result<u64, DurabilityError> {
    let Ok(v) = std::env::var("PGQ_FLUSH_WINDOW") else {
        return Ok(1);
    };
    match v.trim().parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(DurabilityError::config(format!(
            "unrecognized PGQ_FLUSH_WINDOW value `{v}` (expected an integer >= 1)"
        ))),
    }
}

/// Counters reported by update queries (mirrors Neo4j's summary).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Vertices created.
    pub nodes_created: usize,
    /// Edges created.
    pub relationships_created: usize,
    /// Vertices deleted.
    pub nodes_deleted: usize,
    /// Edges deleted.
    pub relationships_deleted: usize,
    /// Properties written (set or removed).
    pub properties_set: usize,
    /// Labels attached.
    pub labels_added: usize,
    /// Labels detached.
    pub labels_removed: usize,
}

/// Outcome of [`GraphEngine::apply_batch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Transactions applied.
    pub transactions: usize,
    /// Propagation passes run. At most `transactions`; smaller means
    /// footprint-disjoint neighbours were coalesced.
    pub passes: usize,
}

/// Result of [`GraphEngine::execute`].
#[derive(Clone, Debug, Default)]
pub struct ExecutionResult {
    /// Output column names (read queries only).
    pub columns: Vec<String>,
    /// Result rows (read queries only).
    pub rows: Vec<Tuple>,
    /// Update counters (update queries only).
    pub stats: UpdateStats,
}

/// The main entry point: a property graph with incrementally maintained
/// openCypher views, all served by **one shared dataflow network** —
/// compiled plans are canonicalised (alpha-renamed, commutatively
/// sorted, σ/π-normalised; see [`pgq_algebra::canon`]) and views whose
/// canonical plans overlap share operator nodes (see
/// [`pgq_ivm::network`]), so maintenance cost tracks affected state,
/// not the number of registered views — even when those views spell the
/// same query with different variable names, conjunct order, or output
/// aliases.
#[derive(Default)]
pub struct GraphEngine {
    graph: PropertyGraph,
    network: DataflowNetwork,
    views: Vec<Option<ViewEntry>>,
    subscribers: Vec<(ViewId, Subscriber)>,
    /// Requested propagation width; `0` means the `PGQ_THREADS` process
    /// default (see [`GraphEngine::set_threads`]).
    threads: usize,
    /// Lazily-built worker pool, shared (via `Arc`) with clones so a
    /// fleet of engines does not multiply OS threads.
    pool: Option<Arc<WorkerPool>>,
    /// Durability handle ([`GraphEngine::open_durable`]); `None` for
    /// in-memory engines, which pay zero logging cost on the hot path.
    durable: Option<Durable>,
}

impl Clone for GraphEngine {
    /// Clones the graph and all view state. Subscribers are **not**
    /// cloned (callbacks are tied to the original engine's consumers);
    /// the worker pool, if any, is shared. Durability is **not**
    /// cloned either: two engines appending to one WAL would interleave
    /// their records into an unreplayable log, so a clone is always an
    /// in-memory engine.
    fn clone(&self) -> GraphEngine {
        GraphEngine {
            graph: self.graph.clone(),
            network: self.network.clone(),
            views: self.views.clone(),
            subscribers: Vec::new(),
            threads: self.threads,
            pool: self.pool.clone(),
            durable: None,
        }
    }
}

impl GraphEngine {
    /// Fresh engine with an empty graph.
    pub fn new() -> GraphEngine {
        GraphEngine::default()
    }

    /// Wrap an existing graph (views can be registered afterwards).
    pub fn from_graph(graph: PropertyGraph) -> GraphEngine {
        GraphEngine {
            graph,
            ..GraphEngine::default()
        }
    }

    /// The underlying graph (read-only; mutate via [`GraphEngine::apply`]
    /// or [`GraphEngine::execute`] so views stay consistent).
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    // ---- transactions ------------------------------------------------------

    /// Set the delta-propagation width: `1` is the strictly serial
    /// engine (byte-identical to a build without the worker pool), `n >
    /// 1` maintains views with an `n`-thread worker pool, and `0`
    /// resets to the `PGQ_THREADS` process default. For any width,
    /// every view's consolidated results are identical (see
    /// [`DataflowNetwork::on_transaction_with`]).
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        self.threads = threads;
        self.pool = None; // rebuilt lazily at the next transaction
        self
    }

    /// Effective delta-propagation width.
    pub fn threads(&self) -> usize {
        match self.threads {
            0 => pgq_common::pool::threads_from_env(),
            n => n,
        }
    }

    /// Run one maintenance pass, through the worker pool when the
    /// configured width asks for one.
    fn propagate(&mut self, events: &[ChangeEvent]) {
        let threads = self.threads();
        let workers = if threads > 1 {
            let rebuild = match self.pool.as_deref() {
                Some(p) => p.threads() != threads,
                None => true,
            };
            if rebuild {
                self.pool = Some(Arc::new(WorkerPool::new(threads)));
            }
            self.pool.as_deref()
        } else {
            None
        };
        self.network
            .on_transaction_with(&self.graph, events, workers);
    }

    /// Apply a transaction and maintain every registered view.
    ///
    /// On a durable engine the committed transaction is appended to the
    /// WAL *after* the store accepts it — a crash between commit and
    /// append loses that transaction entirely (async-commit semantics)
    /// but can never log a transaction that did not commit. If the
    /// append (or its covering fsync) **fails**, this commit fails
    /// cleanly: the in-memory mutation is rolled back, a typed
    /// [`EngineError::Durability`] is returned, and the engine stays
    /// usable. Repeated failures trip the breaker into read-only
    /// degraded mode ([`EngineError::ReadOnly`]); see
    /// [`GraphEngine::reset_durability`].
    pub fn apply(&mut self, tx: &Transaction) -> Result<Vec<ChangeEvent>, EngineError> {
        self.check_writable()?;
        let watermarks = self.graph.id_watermarks();
        let events = self.graph.apply(tx)?;
        if let Err((e, force)) = self.wal_commit(tx) {
            // The commit never happened: take the in-memory mutation
            // back (ids included — replay determinism) before erroring.
            self.graph.unapply(&events, watermarks);
            return Err(self.commit_failed(e, force));
        }
        self.commit_succeeded();
        self.maintain(&events);
        self.maybe_snapshot();
        Ok(events)
    }

    /// Apply a sequence of transactions, coalescing runs of
    /// **consecutive non-conflicting** transactions — disjoint scan
    /// footprints per [`DataflowNetwork::tx_footprint`] — into one
    /// propagation pass over their concatenated events. The store emits
    /// events per operation, so a coalesced pass sees exactly the event
    /// stream of the equivalent merged transaction. View contents are
    /// identical to applying the transactions one by one, but change
    /// notifications may coarsen: a view reading several scans can be
    /// dirtied by more than one member of a coalesced run, and its
    /// subscribers then receive a single merged delta spanning those
    /// transactions.
    ///
    /// Every transaction is applied atomically as usual; if one fails,
    /// the transactions before it are flushed into the views and the
    /// error is returned (the failed transaction itself rolls back).
    ///
    /// Durability uses **group commit**: each member is appended to the
    /// WAL individually (so replay reproduces the exact transaction
    /// sequence), but under `PGQ_FSYNC=always` the whole batch shares
    /// one `sync_data` at the end instead of one per member. A failed
    /// member append rolls that member back and fails typed like
    /// [`GraphEngine::apply`]; a failed *batch sync* covers members the
    /// batch already applied, so the engine degrades to read-only
    /// (memory is ahead of disk until an operator runs
    /// [`GraphEngine::reset_durability`]).
    pub fn apply_batch(&mut self, txs: &[Transaction]) -> Result<BatchSummary, EngineError> {
        self.check_writable()?;
        let mut summary = BatchSummary::default();
        let mut group_events: Vec<ChangeEvent> = Vec::new();
        let mut group_fp = TxFootprint::default();
        for tx in txs {
            let fp = self.network.tx_footprint(&self.graph, tx);
            if !group_events.is_empty() && !fp.disjoint(&group_fp) {
                let events = std::mem::take(&mut group_events);
                self.maintain(&events);
                summary.passes += 1;
                group_fp = TxFootprint::default();
            }
            let watermarks = self.graph.id_watermarks();
            match self.graph.apply(tx) {
                Ok(events) => {
                    if let Err((e, force)) = self.wal_append(tx) {
                        // This member never committed; the ones before
                        // it did. Roll it back, flush the others into
                        // the views, and try to make them durable.
                        self.graph.unapply(&events, watermarks);
                        if !group_events.is_empty() {
                            self.maintain(&group_events);
                        }
                        let flush = self.wal_flush();
                        let err = self.commit_failed(e, force);
                        if let Err((fe, _)) = flush {
                            // Earlier members were already applied and
                            // cannot be taken back: memory is ahead of
                            // disk, so the breaker trips immediately.
                            return Err(self.commit_failed(fe, true));
                        }
                        return Err(err);
                    }
                    group_events.extend(events);
                    group_fp.merge(&fp);
                    summary.transactions += 1;
                }
                Err(e) => {
                    // Views must reflect the transactions that did land
                    // (the summary itself is lost to the error).
                    if !group_events.is_empty() {
                        self.maintain(&group_events);
                    }
                    return Err(e.into());
                }
            }
        }
        if !group_events.is_empty() {
            self.maintain(&group_events);
            summary.passes += 1;
        }
        // Group commit: one sync covers every member of the batch.
        if let Err((e, _)) = self.wal_flush() {
            // The members are applied and cannot be taken back.
            return Err(self.commit_failed(e, summary.transactions > 0));
        }
        self.commit_succeeded();
        self.maybe_snapshot();
        Ok(summary)
    }

    fn maintain(&mut self, events: &[ChangeEvent]) {
        if events.is_empty() {
            return;
        }
        self.propagate(events);
        for (i, entry) in self.views.iter().enumerate() {
            let Some(entry) = entry else { continue };
            if !self.network.sink_changed(entry.sink) {
                continue;
            }
            let id = ViewId(i);
            let mut notification: Option<ViewDelta> = None;
            for (sid, callback) in &mut self.subscribers {
                if *sid == id {
                    let vd = notification.get_or_insert_with(|| {
                        ViewDelta::from_delta(
                            self.network.view(entry.sink).name(),
                            self.network.last_delta(entry.sink),
                        )
                    });
                    callback(vd);
                }
            }
        }
    }

    /// Apply a transaction and also return each view's delta (for
    /// subscribers/benchmarks).
    pub fn apply_with_deltas(
        &mut self,
        tx: &Transaction,
    ) -> Result<Vec<(ViewId, Delta)>, EngineError> {
        self.check_writable()?;
        let watermarks = self.graph.id_watermarks();
        let events = self.graph.apply(tx)?;
        if let Err((e, force)) = self.wal_commit(tx) {
            self.graph.unapply(&events, watermarks);
            return Err(self.commit_failed(e, force));
        }
        self.commit_succeeded();
        self.propagate(&events);
        let mut out = Vec::new();
        for (i, entry) in self.views.iter().enumerate() {
            if let Some(e) = entry {
                let d = if self.network.sink_changed(e.sink) {
                    self.network.last_delta(e.sink).clone()
                } else {
                    Delta::new()
                };
                out.push((ViewId(i), d));
            }
        }
        Ok(out)
    }

    // ---- views ---------------------------------------------------------------

    /// Register an incrementally maintained view. Fails with
    /// [`pgq_algebra::AlgebraError::NotMaintainable`] for queries outside
    /// the paper's fragment.
    ///
    /// Registration shares dataflow up to alpha-equivalence: a query
    /// that differs from an existing view only in variable names,
    /// `WHERE` conjunct order, or `RETURN` aliases adds **zero** new
    /// operator nodes ([`GraphEngine::network_node_count`] is the
    /// observable), and a query differing only in its top-level `WHERE`
    /// shares the whole stateful prefix below its private filter.
    pub fn register_view(&mut self, name: &str, cypher: &str) -> Result<ViewId, EngineError> {
        self.register_view_with(name, cypher, CompileOptions::default())
    }

    /// Register a view with explicit compile options (e.g. the
    /// no-push-down ablation mode).
    pub fn register_view_with(
        &mut self,
        name: &str,
        cypher: &str,
        options: CompileOptions,
    ) -> Result<ViewId, EngineError> {
        self.register_inner(name, cypher, options, RegisterOptions::default())
    }

    /// Register a view with the cost-based planner disabled, so the
    /// dataflow executes the query's *syntactic* join order. The
    /// baseline for the planner benchmarks and the differential
    /// planner-twin oracle; production views should use
    /// [`GraphEngine::register_view`].
    pub fn register_view_unplanned(
        &mut self,
        name: &str,
        cypher: &str,
    ) -> Result<ViewId, EngineError> {
        self.register_inner(
            name,
            cypher,
            CompileOptions::default(),
            RegisterOptions {
                plan: false,
                ..RegisterOptions::default()
            },
        )
    }

    /// Register a view with the cost-based planner on but worst-case
    /// optimal n-ary fusion off, so cyclic patterns run as binary join
    /// trees. The baseline for the ⨝ⁿ benchmarks and the wcoj-vs-binary
    /// differential oracle; production views should use
    /// [`GraphEngine::register_view`].
    pub fn register_view_binary(
        &mut self,
        name: &str,
        cypher: &str,
    ) -> Result<ViewId, EngineError> {
        self.register_inner(
            name,
            cypher,
            CompileOptions::default(),
            RegisterOptions {
                wcoj: pgq_algebra::plan::WcojMode::Disabled,
                ..RegisterOptions::default()
            },
        )
    }

    /// Register a view with worst-case optimal fusion *forced* for every
    /// eligible cyclic region (bypassing the catalog cost gate) and the
    /// ⨝ⁿ sub-index backend pinned to sorted runs (`sorted = true`) or
    /// hash tries (`sorted = false`). For benchmarks and differential
    /// tests that must exercise the fused operator on graphs where the
    /// cost gate would choose the binary tree; production views should
    /// use [`GraphEngine::register_view`].
    pub fn register_view_wcoj_forced(
        &mut self,
        name: &str,
        cypher: &str,
        sorted: bool,
    ) -> Result<ViewId, EngineError> {
        self.register_inner(
            name,
            cypher,
            CompileOptions::default(),
            RegisterOptions {
                wcoj: pgq_algebra::plan::WcojMode::Forced,
                wcoj_sorted: Some(sorted),
                ..RegisterOptions::default()
            },
        )
    }

    fn register_inner(
        &mut self,
        name: &str,
        cypher: &str,
        options: CompileOptions,
        register: RegisterOptions,
    ) -> Result<ViewId, EngineError> {
        if self.view_by_name(name).is_some() {
            return Err(EngineError::DuplicateView(name.to_string()));
        }
        let query = parse_query(cypher)?;
        let compiled = compile_query_with(&query, options)?;
        if !compiled.is_maintainable() {
            return Err(AlgebraError::NotMaintainable(compiled.not_maintainable.join("; ")).into());
        }
        let sink = self
            .network
            .register_with(name, &compiled.fra, &self.graph, register);
        let id = ViewId(self.views.len());
        self.views.push(Some(ViewEntry {
            sink,
            compiled,
            query_text: cypher.to_string(),
            compile: options,
            register,
        }));
        // Registration changes what a recovery must rebuild; persist it
        // immediately (the snapshot is the DDL log — the WAL carries
        // only data transactions). If the snapshot cannot land, the
        // registration is undone so disk and memory agree.
        if let Err(e) = self.snapshot() {
            let entry = self.views.pop().flatten().expect("pushed above");
            self.network.drop_sink(entry.sink);
            return Err(e);
        }
        Ok(id)
    }

    /// Drop a view. Operator nodes shared with other views survive; the
    /// network releases only the nodes no remaining view reaches.
    pub fn drop_view(&mut self, id: ViewId) -> Result<(), EngineError> {
        match self.views.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                let entry = slot.take().expect("matched Some");
                self.network.drop_sink(entry.sink);
                self.snapshot()?;
                Ok(())
            }
            _ => Err(EngineError::UnknownView),
        }
    }

    /// Look up a view id by name.
    pub fn view_by_name(&self, name: &str) -> Option<ViewId> {
        self.views.iter().enumerate().find_map(|(i, e)| {
            e.as_ref()
                .filter(|e| self.network.view(e.sink).name() == name)
                .map(|_| ViewId(i))
        })
    }

    /// Access a view's results through the shared network.
    pub fn view(&self, id: ViewId) -> Result<ViewRef<'_>, EngineError> {
        self.views
            .get(id.0)
            .and_then(|e| e.as_ref())
            .map(|e| self.network.view(e.sink))
            .ok_or(EngineError::UnknownView)
    }

    /// The view's current rows (multiplicities expanded).
    pub fn view_results(&self, id: ViewId) -> Result<Vec<Tuple>, EngineError> {
        Ok(self.view(id)?.rows())
    }

    /// All registered views.
    pub fn views(&self) -> impl Iterator<Item = (ViewId, ViewRef<'_>)> {
        self.views
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (ViewId(i), self.network.view(e.sink))))
    }

    /// The shared dataflow network serving every registered view
    /// (read-only; for stats, node-sharing inspection, and tests).
    pub fn network(&self) -> &DataflowNetwork {
        &self.network
    }

    // ---- durability ----------------------------------------------------------

    /// Open (or create) a durable engine rooted at `dir`: recover from
    /// the generation-numbered `snap.<g>` / `wal.<g>` files,
    /// **warm-restore** every standing view's operator state, replay
    /// the WAL chain, and arm per-transaction logging.
    ///
    /// Environment knobs, all parsed strictly (a typo is a startup
    /// error, never a silently different durability level):
    /// - `PGQ_FSYNC` — `always`/`1`/`true` syncs at every commit flush
    ///   point; default is OS-buffered.
    /// - `PGQ_WAL_COMPACT` — default on: every snapshot switches WAL
    ///   generations and deletes the subsumed log; `0` pins generation
    ///   0 and lets the log grow (snapshots then store a replay-skip
    ///   count).
    /// - `PGQ_FLUSH_WINDOW` — group-commit window under
    ///   `PGQ_FSYNC=always`: one `sync_data` per `n` commits
    ///   (default 1; `n > 1` accepts a documented loss window of up to
    ///   `n - 1` acknowledged commits on power failure).
    /// - `PGQ_SNAPSHOT_EVERY` — auto-snapshot cadence in committed
    ///   transactions (default 1024, `0` disables the cadence).
    pub fn open_durable(dir: impl Into<std::path::PathBuf>) -> Result<GraphEngine, EngineError> {
        let fsync = FsyncMode::from_env().map_err(DurabilityError::config)?;
        let vfs =
            StdVfs::new(dir, fsync).map_err(|e| DurabilityError::io(DurOp::SnapshotLoad, &e))?;
        GraphEngine::open_durable_with(Arc::new(vfs))
    }

    /// [`GraphEngine::open_durable`] over an explicit storage layer —
    /// crash tests drive this with the fault-injectable
    /// [`pgq_durability::MemVfs`]. Reads the same environment knobs.
    ///
    /// Recovery protocol, in order:
    /// 1. Plan over the directory ([`pgq_durability::recovery`]): pick
    ///    the newest **readable** snapshot — a corrupt one is
    ///    quarantined and recovery degrades to the previous
    ///    generation's snapshot plus a longer replay, or a cold start;
    ///    never a panic, never a hard error for corruption.
    /// 2. Rebuild the graph, then re-register every standing view
    ///    mode-faithfully into its original slot via
    ///    [`DataflowNetwork::register_with_restore`], so fingerprint
    ///    hits skip the initial-evaluation cost.
    /// 3. Replay the WAL chain `wal.<base>..wal.<active>` through the
    ///    normal maintenance path (the base snapshot's skip count
    ///    applies to its own generation only). Torn tails were already
    ///    trimmed by the planner; a record that stops *applying*
    ///    cleanly mid-replay is treated like tail corruption — the log
    ///    is trimmed to the last good record, later generations are
    ///    quarantined, and the engine opens at the committed prefix.
    /// 4. Arm logging on the active generation. The planner's
    ///    [`RecoveryReport`] stays inspectable via
    ///    [`GraphEngine::recovery_report`].
    pub fn open_durable_with(vfs: Arc<dyn Vfs>) -> Result<GraphEngine, EngineError> {
        let fsync = FsyncMode::from_env().map_err(DurabilityError::config)?;
        let compact = compact_from_env()?;
        let flush_window = flush_window_from_env()?;

        let mut plan = recovery::plan(vfs.as_ref())?;
        let mut engine;
        let skip;
        match plan.snapshot.take() {
            Some(s) => {
                engine =
                    GraphEngine::from_graph(s.restore_graph().map_err(|e| {
                        DurabilityError::corrupt(DurOp::SnapshotLoad, e.to_string())
                    })?);
                let mut states = RestoreStates::new();
                for (fp, check, bag) in &s.states {
                    states.insert(*fp, *check, bag.clone());
                }
                let mut views: Vec<&SnapshotView> = s.views.iter().collect();
                views.sort_by_key(|v| v.slot);
                for v in views {
                    engine.register_recovered(v, &states)?;
                }
                skip = s.wal_records as usize;
            }
            None => {
                engine = GraphEngine::new();
                skip = 0;
            }
        }

        let mut report = plan.report;
        let mut generation = plan.active_generation;
        let mut wal_len = plan.active_wal_len;
        let mut wal_records = plan
            .replay
            .last()
            .map(|(_, l)| l.txs.len() as u64)
            .unwrap_or(0);
        'chain: for (idx, (g, log)) in plan.replay.iter().enumerate() {
            let skip_here = if idx == 0 { skip } else { 0 };
            for (j, tx) in log.txs.iter().enumerate().skip(skip_here) {
                match engine.graph.apply(tx) {
                    Ok(events) => engine.maintain(&events),
                    Err(e) => {
                        // The record passed its checksum but does not
                        // apply to the state it claims to extend —
                        // semantic corruption. Trim to the last good
                        // record and refuse everything after the break.
                        let keep = if j == 0 { 0 } else { log.ends[j - 1] };
                        report.notes.push(format!(
                            "wal generation {g} record {j} failed to replay: {e}"
                        ));
                        match wal::repair(vfs.as_ref(), *g, keep) {
                            Ok(()) => report.trimmed.push((*g, log.valid_len() - keep)),
                            Err(re) => {
                                report
                                    .notes
                                    .push(format!("failed to trim wal generation {g}: {re}"));
                                report.tail_repair_failed = true;
                            }
                        }
                        for (later, _) in &plan.replay[idx + 1..] {
                            recovery::quarantine_file(vfs.as_ref(), &wal_file(*later), &mut report);
                        }
                        generation = *g;
                        wal_len = keep;
                        wal_records = j as u64;
                        report.active_generation = generation;
                        break 'chain;
                    }
                }
            }
        }

        // A tail that could not be rewritten must not be appended to —
        // new records after garbage bytes would be unreadable. Open
        // degraded; reset_durability switches to a fresh generation.
        let degraded = report.tail_repair_failed.then(|| {
            DurabilityError::corrupt(
                DurOp::WalRepair,
                "recovered log tail could not be rewritten; appends would extend garbage",
            )
        });
        engine.durable = Some(Durable {
            vfs,
            generation,
            wal_records,
            wal_len,
            compact,
            fsync,
            flush_window,
            unsynced: 0,
            snapshot_every: snapshot_every_from_env(),
            txs_since_snapshot: 0,
            fail_streak: 0,
            max_failures: 3,
            degraded,
            last_error: None,
            recovery: report,
        });
        Ok(engine)
    }

    /// Is this engine logging to a durability directory?
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Override the auto-snapshot cadence (`0` disables it). No-op on
    /// in-memory engines.
    pub fn set_snapshot_every(&mut self, every: u64) -> &mut Self {
        if let Some(d) = self.durable.as_mut() {
            d.snapshot_every = every;
        }
        self
    }

    /// Write a full snapshot now: graph dump, per-view registration
    /// metadata, and every live operator node's state bag keyed by its
    /// content-stable plan fingerprint. Atomic (write-to-temp +
    /// rename): a crash mid-write leaves the previous snapshot intact.
    /// With compaction armed this is also a **generation switchover**:
    /// the snapshot lands as `snap.<g+1>`, appends move to `wal.<g+1>`,
    /// and the subsumed generation-`g` files are deleted only after the
    /// snapshot's atomic rename — a crash at any point of the
    /// switchover still recovers a committed prefix. No-op on in-memory
    /// engines.
    pub fn snapshot(&mut self) -> Result<(), EngineError> {
        let compact = self.durable.as_ref().is_some_and(|d| d.compact);
        self.snapshot_inner(compact).map_err(EngineError::from)
    }

    fn snapshot_inner(&mut self, switch_generation: bool) -> Result<(), DurabilityError> {
        let Some(wal_records) = self.durable.as_ref().map(|d| d.wal_records) else {
            return Ok(());
        };
        let mut snap = Snapshot::capture_graph(&self.graph);
        // A compacting snapshot anchors a fresh generation whose log
        // starts empty; a pinned-generation snapshot records how many
        // log records it subsumes instead.
        snap.wal_records = if switch_generation { 0 } else { wal_records };
        for (i, entry) in self.views.iter().enumerate() {
            let Some(e) = entry else { continue };
            snap.views.push(SnapshotView {
                slot: i as u32,
                name: self.network.view(e.sink).name().to_string(),
                query: e.query_text.clone(),
                schema_mode: match e.compile.schema_mode {
                    SchemaMode::Inferred => 0,
                    SchemaMode::CarryMaps => 1,
                },
                optimize: e.compile.optimize,
                plan: e.register.plan,
                wcoj_mode: match e.register.wcoj {
                    WcojMode::Disabled => 0,
                    WcojMode::CostBased => 1,
                    WcojMode::Forced => 2,
                },
                wcoj_sorted: e.register.wcoj_sorted,
            });
        }
        for (fp, check, bag) in self.network.dump_states().iter() {
            snap.states.push((fp, check, bag.to_vec()));
        }
        let d = self.durable.as_mut().expect("checked above");
        let target = if switch_generation {
            d.generation + 1
        } else {
            d.generation
        };
        snap.write(d.vfs.as_ref(), target)
            .map_err(|e| DurabilityError::io(DurOp::SnapshotWrite, &e))?;
        if switch_generation {
            // The rename is durable; the old generation is now dead
            // weight. Deletion is best-effort — a crash (or an error)
            // here just leaves stale files the next recovery removes.
            let old = d.generation;
            d.generation = target;
            d.wal_records = 0;
            d.wal_len = 0;
            d.unsynced = 0;
            for name in [wal_file(old), snap_file(old)] {
                if let Err(e) = d.vfs.remove(&name) {
                    d.last_error = Some(DurabilityError::io(DurOp::Cleanup, &e));
                }
            }
        }
        d.txs_since_snapshot = 0;
        Ok(())
    }

    /// Refuse updates while degraded.
    fn check_writable(&self) -> Result<(), EngineError> {
        match self.durable.as_ref().and_then(|d| d.degraded.as_ref()) {
            Some(e) => Err(EngineError::ReadOnly(e.clone())),
            None => Ok(()),
        }
    }

    /// Append one committed transaction and run the flush policy. On
    /// `Err((error, force_degrade))` the commit did not become durable
    /// and the caller must roll the in-memory mutation back;
    /// `force_degrade` means the failure also covered *previously
    /// acknowledged* commits (group-commit sync failure) and the
    /// breaker must trip immediately.
    fn wal_commit(&mut self, tx: &Transaction) -> Result<(), (DurabilityError, bool)> {
        let pre = self
            .durable
            .as_ref()
            .map(|d| (d.wal_len, d.wal_records))
            .unwrap_or((0, 0));
        self.wal_append(tx)?;
        let Some(d) = self.durable.as_mut() else {
            return Ok(());
        };
        if d.fsync == FsyncMode::Always && d.unsynced >= d.flush_window {
            self.wal_sync(Some(pre))?;
        }
        Ok(())
    }

    /// Append without syncing (the group-commit first half).
    fn wal_append(&mut self, tx: &Transaction) -> Result<(), (DurabilityError, bool)> {
        let Some(d) = self.durable.as_mut() else {
            return Ok(());
        };
        match wal::append_tx(d.vfs.as_ref(), d.generation, tx) {
            Ok(frame) => {
                d.wal_len += frame;
                d.wal_records += 1;
                d.txs_since_snapshot += 1;
                if d.fsync == FsyncMode::Always {
                    d.unsynced += 1;
                }
                Ok(())
            }
            Err(e) => {
                // The append may have torn (short write): rewrite the
                // log back to the last record boundary so the file
                // stays appendable. If even that fails, the tail is
                // untrustworthy — degrade immediately.
                let err = DurabilityError::io(DurOp::WalAppend, &e);
                let force = wal::repair(d.vfs.as_ref(), d.generation, d.wal_len).is_err();
                Err((err, force))
            }
        }
    }

    /// Sync the active log if commits are pending (the group-commit
    /// second half). On failure, post-fsyncgate semantics apply: the
    /// unsynced bytes are in limbo — the kernel may have kept them, or
    /// dropped them — so the engine must not trust anything past its
    /// last known durable prefix. If the only at-risk commit is the
    /// current one (`rollback` carries the pre-append log boundary),
    /// the failure is rollbackable: the log is rewritten to that
    /// boundary so the rejected commit can never resurface at
    /// recovery. If previously acknowledged commits were covered,
    /// `force_degrade` is set instead.
    fn wal_sync(&mut self, rollback: Option<(u64, u64)>) -> Result<(), (DurabilityError, bool)> {
        let Some(d) = self.durable.as_mut() else {
            return Ok(());
        };
        if d.unsynced == 0 {
            return Ok(());
        }
        match d.vfs.sync(&wal_file(d.generation)) {
            Ok(()) => {
                d.unsynced = 0;
                Ok(())
            }
            Err(e) => {
                let err = DurabilityError::io(DurOp::WalSync, &e);
                match rollback {
                    Some((len, records)) if d.unsynced == 1 => {
                        // Only the current commit was at risk: take it
                        // back from the mirrors and physically rewrite
                        // the log to the pre-append boundary (whether
                        // or not the failed fsync kept its bytes).
                        d.wal_len = len;
                        d.wal_records = records;
                        d.txs_since_snapshot = d.txs_since_snapshot.saturating_sub(1);
                        d.unsynced = 0;
                        let force = wal::repair(d.vfs.as_ref(), d.generation, len).is_err();
                        Err((err, force))
                    }
                    _ => {
                        // Acknowledged commits may be gone from disk
                        // while they live on in memory — unrecoverable
                        // without operator action.
                        d.unsynced = 0;
                        Err((err, true))
                    }
                }
            }
        }
    }

    /// Flush pending group-commit appends (used by `apply_batch` and
    /// callers that want a durability barrier). A failure here always
    /// forces degradation: the at-risk commits were already applied
    /// and maintained, so they cannot be rolled back individually.
    fn wal_flush(&mut self) -> Result<(), (DurabilityError, bool)> {
        let fsync = self.durable.as_ref().map(|d| d.fsync);
        if fsync == Some(FsyncMode::Always) {
            self.wal_sync(None)
        } else {
            Ok(())
        }
    }

    /// Record a failed commit, trip the breaker when due, and build the
    /// caller's error.
    fn commit_failed(&mut self, e: DurabilityError, force_degrade: bool) -> EngineError {
        if let Some(d) = self.durable.as_mut() {
            d.fail_streak += 1;
            d.last_error = Some(e.clone());
            if d.degraded.is_none() && (force_degrade || d.fail_streak >= d.max_failures) {
                d.degraded = Some(e.clone());
            }
        }
        EngineError::Durability(e)
    }

    fn commit_succeeded(&mut self) {
        if let Some(d) = self.durable.as_mut() {
            d.fail_streak = 0;
        }
    }

    /// Snapshot if the auto-cadence is due. The triggering commit is
    /// already durable in the WAL, so a failed cadence snapshot is
    /// recorded in [`DurabilityHealth::last_error`] rather than failing
    /// the commit; the cadence retries on the next commit.
    fn maybe_snapshot(&mut self) {
        let due = self
            .durable
            .as_ref()
            .is_some_and(|d| d.snapshot_every > 0 && d.txs_since_snapshot >= d.snapshot_every);
        if due {
            let compact = self.durable.as_ref().is_some_and(|d| d.compact);
            if let Err(e) = self.snapshot_inner(compact) {
                if let Some(d) = self.durable.as_mut() {
                    d.last_error = Some(e);
                }
            }
        }
    }

    /// Operator-facing durability status: degraded flag, failure
    /// breaker counters, active generation and log size. `None` on
    /// in-memory engines.
    pub fn durability_health(&self) -> Option<DurabilityHealth> {
        self.durable.as_ref().map(|d| DurabilityHealth {
            degraded: d.degraded.clone(),
            fail_streak: d.fail_streak,
            last_error: d.last_error.clone(),
            generation: d.generation,
            wal_records: d.wal_records,
            wal_len: d.wal_len,
            compact: d.compact,
            flush_window: d.flush_window,
        })
    }

    /// Is the engine refusing updates after repeated durability
    /// failures?
    pub fn is_degraded(&self) -> bool {
        self.durable.as_ref().is_some_and(|d| d.degraded.is_some())
    }

    /// What recovery found and repaired when this engine opened
    /// (quarantined files, trimmed tails, the generation fallback).
    /// `None` on in-memory engines.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable.as_ref().map(|d| &d.recovery)
    }

    /// Operator action: clear read-only degraded mode after the storage
    /// problem is fixed. Cuts a fresh **generation-switching** snapshot
    /// of the full in-memory state — even with compaction off — which
    /// re-baselines disk to memory (healing any divergence a failed
    /// group-commit sync left behind), then re-arms the failure
    /// breaker. Fails typed (and stays degraded) if the disk still
    /// cannot accept the snapshot.
    pub fn reset_durability(&mut self) -> Result<(), EngineError> {
        if self.durable.is_none() {
            return Ok(());
        }
        self.snapshot_inner(true).map_err(|e| {
            if let Some(d) = self.durable.as_mut() {
                d.last_error = Some(e.clone());
            }
            EngineError::Durability(e)
        })?;
        let d = self.durable.as_mut().expect("checked above");
        d.degraded = None;
        d.fail_streak = 0;
        Ok(())
    }

    /// Toggle generation-switching WAL compaction (see
    /// `PGQ_WAL_COMPACT`). No-op on in-memory engines.
    pub fn set_wal_compact(&mut self, compact: bool) -> &mut Self {
        if let Some(d) = self.durable.as_mut() {
            d.compact = compact;
        }
        self
    }

    /// Override the commit flush policy (see `PGQ_FSYNC`). No-op on
    /// in-memory engines.
    pub fn set_fsync(&mut self, fsync: FsyncMode) -> &mut Self {
        if let Some(d) = self.durable.as_mut() {
            d.fsync = fsync;
        }
        self
    }

    /// Override the group-commit flush window (see `PGQ_FLUSH_WINDOW`;
    /// clamped to >= 1). No-op on in-memory engines.
    pub fn set_flush_window(&mut self, window: u64) -> &mut Self {
        if let Some(d) = self.durable.as_mut() {
            d.flush_window = window.max(1);
        }
        self
    }

    /// Override how many consecutive failed commits trip the read-only
    /// breaker (default 3; clamped to >= 1). No-op on in-memory
    /// engines.
    pub fn set_max_durability_failures(&mut self, max: u64) -> &mut Self {
        if let Some(d) = self.durable.as_mut() {
            d.max_failures = max.max(1);
        }
        self
    }

    /// Re-register one snapshot view, mode-faithfully, into its
    /// original slot, warm-restoring operator state where fingerprints
    /// hit.
    fn register_recovered(
        &mut self,
        v: &SnapshotView,
        states: &RestoreStates,
    ) -> Result<(), EngineError> {
        let query = parse_query(&v.query)?;
        let compile = CompileOptions {
            schema_mode: match v.schema_mode {
                1 => SchemaMode::CarryMaps,
                _ => SchemaMode::Inferred,
            },
            optimize: v.optimize,
        };
        let compiled = compile_query_with(&query, compile)?;
        let register = RegisterOptions {
            plan: v.plan,
            wcoj: match v.wcoj_mode {
                0 => WcojMode::Disabled,
                2 => WcojMode::Forced,
                _ => WcojMode::CostBased,
            },
            wcoj_sorted: v.wcoj_sorted,
        };
        let sink = self.network.register_with_restore(
            v.name.clone(),
            &compiled.fra,
            &self.graph,
            register,
            states,
        );
        let slot = v.slot as usize;
        if self.views.len() <= slot {
            self.views.resize_with(slot + 1, || None);
        }
        self.views[slot] = Some(ViewEntry {
            sink,
            compiled,
            query_text: v.query.clone(),
            compile,
            register,
        });
        Ok(())
    }

    // ---- queries -------------------------------------------------------------

    /// One-shot (non-incremental) query via the baseline evaluator.
    /// Supports the full parsed fragment including ORDER BY / SKIP /
    /// LIMIT.
    pub fn query(&self, cypher: &str) -> Result<ExecutionResult, EngineError> {
        let query = parse_query(cypher)?;
        if query.is_update() {
            return Err(EngineError::Unsupported(
                "query() is read-only; use execute() for updates".into(),
            ));
        }
        let compiled = compile_query_with(&query, CompileOptions::default())?;
        let rows = pgq_eval::evaluate_query(&compiled, &self.graph);
        Ok(ExecutionResult {
            columns: compiled.columns.clone(),
            rows,
            stats: UpdateStats::default(),
        })
    }

    /// Execute any supported statement: read queries are evaluated
    /// one-shot; update queries run their reading part, apply the update
    /// clauses atomically, and maintain all views.
    pub fn execute(&mut self, cypher: &str) -> Result<ExecutionResult, EngineError> {
        let query = parse_query(cypher)?;
        if !query.is_update() {
            return self.query(cypher);
        }
        if query.return_clause().is_some() {
            return Err(EngineError::Unsupported(
                "RETURN combined with update clauses".into(),
            ));
        }
        let plan = UpdatePlan::build(&query)?;
        let (tx, stats) = plan.to_transaction(&query, &self.graph)?;
        self.apply(&tx)?;
        Ok(ExecutionResult {
            columns: Vec::new(),
            rows: Vec::new(),
            stats,
        })
    }

    /// Execute a `;`-separated script of statements in order. The whole
    /// script is parsed up-front (a syntax error executes nothing); at
    /// runtime the atomicity unit is the statement, as in cypher-shell —
    /// statements before a failing one stay committed.
    pub fn execute_script(&mut self, script: &str) -> Result<Vec<ExecutionResult>, EngineError> {
        let queries = pgq_parser::parse_script(script)?;
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            // Re-render is lossless (tested by the parser's round-trip
            // suite), so reuse the single-statement path for uniform
            // handling.
            out.push(self.execute(&q.to_string())?);
        }
        Ok(out)
    }

    /// EXPLAIN: render all three pipeline stages and the maintainability
    /// verdict.
    pub fn explain(&self, cypher: &str) -> Result<String, EngineError> {
        let query = parse_query(cypher)?;
        let compiled = compile_query_with(&query, CompileOptions::default())?;
        let mut out = String::new();
        out.push_str("== Stage 1: GRA (graph relational algebra)\n");
        out.push_str(&format!("{}\n", compiled.gra));
        out.push_str("\n== Stage 2: NRA (nested relational algebra)\n");
        out.push_str(&format!("{}\n", compiled.nra));
        out.push_str("\n== Stage 3: FRA (flat relational algebra, inferred schema)\n");
        out.push_str(&compiled.fra.explain());
        out.push_str("\n== Stage 4: cost-based plan (live statistics snapshot)\n");
        if pgq_ivm::planner_enabled() {
            let opts = pgq_algebra::plan::PlanOptions {
                wcoj: if pgq_ivm::wcoj_enabled() {
                    pgq_algebra::plan::WcojMode::CostBased
                } else {
                    pgq_algebra::plan::WcojMode::Disabled
                },
            };
            out.push_str(&compiled.explain_plan_with(&pgq_ivm::plan_stats(&self.graph), &opts));
        } else {
            // Show the order that will actually execute.
            out.push_str("planner: disabled (PGQ_DISABLE_PLANNER); the syntactic order runs\n");
            out.push_str(&pgq_algebra::plan::explain_with_estimates(
                &compiled.fra,
                &pgq_ivm::plan_stats(&self.graph),
            ));
        }
        out.push_str("\n== Maintainability\n");
        if compiled.is_maintainable() {
            out.push_str("incrementally maintainable\n");
        } else {
            for reason in &compiled.not_maintainable {
                out.push_str(&format!("NOT maintainable: {reason}\n"));
            }
        }
        Ok(out)
    }

    /// Query text a view was registered with.
    pub fn view_query(&self, id: ViewId) -> Result<&str, EngineError> {
        self.views
            .get(id.0)
            .and_then(|e| e.as_ref())
            .map(|e| e.query_text.as_str())
            .ok_or(EngineError::UnknownView)
    }

    /// Compiled pipeline of a view (for reports).
    pub fn view_compiled(&self, id: ViewId) -> Result<&CompiledQuery, EngineError> {
        self.views
            .get(id.0)
            .and_then(|e| e.as_ref())
            .map(|e| &e.compiled)
            .ok_or(EngineError::UnknownView)
    }

    /// Total live operator nodes in the shared network (the node-sharing
    /// metric: N structurally identical views keep this at one chain).
    pub fn network_node_count(&self) -> usize {
        self.network.node_count()
    }

    /// Subscribe to a view's deltas (Graphflow-style active query): the
    /// callback fires after every transaction that changes the view's
    /// result, with the inserted and removed rows.
    pub fn subscribe(
        &mut self,
        id: ViewId,
        callback: impl FnMut(&ViewDelta) + Send + 'static,
    ) -> Result<(), EngineError> {
        if self.views.get(id.0).and_then(|e| e.as_ref()).is_none() {
            return Err(EngineError::UnknownView);
        }
        self.subscribers.push((id, Box::new(callback)));
        Ok(())
    }

    /// Per-operator network statistics of a view (EXPLAIN-ANALYZE-style).
    pub fn view_stats(&self, id: ViewId) -> Result<pgq_ivm::stats::OpStats, EngineError> {
        Ok(self.view(id)?.network_stats())
    }
}

/// Interpreter for the update clauses of a query.
struct UpdatePlan {
    /// Projection items for the bindings query: bound variables first,
    /// then every value expression appearing in SET / CREATE props.
    items: Vec<(Expr, String)>,
    /// Does the query have any reading clause (MATCH/UNWIND)?
    has_reading: bool,
}

impl UpdatePlan {
    fn build(query: &Query) -> Result<UpdatePlan, EngineError> {
        let mut bound_vars: Vec<String> = Vec::new();
        let mut has_reading = false;
        // First pass: find variables bound by reading clauses.
        for clause in &query.clauses {
            match clause {
                Clause::Match { pattern, .. } => {
                    has_reading = true;
                    for p in &pattern.paths {
                        if let Some(v) = &p.variable {
                            push_unique(&mut bound_vars, v);
                        }
                        if let Some(v) = &p.start.variable {
                            push_unique(&mut bound_vars, v);
                        }
                        for (r, n) in &p.steps {
                            if let Some(v) = &r.variable {
                                push_unique(&mut bound_vars, v);
                            }
                            if let Some(v) = &n.variable {
                                push_unique(&mut bound_vars, v);
                            }
                        }
                    }
                }
                Clause::Unwind { alias, .. } => {
                    has_reading = true;
                    push_unique(&mut bound_vars, alias);
                }
                _ => {}
            }
        }
        // Second pass: which bound vars and value expressions do the
        // update clauses need?
        let mut items: Vec<(Expr, String)> = Vec::new();
        let mut exprs = 0usize;
        let need_var = |items: &mut Vec<(Expr, String)>, v: &str| {
            if bound_vars.iter().any(|b| b == v) && !items.iter().any(|(_, n)| n == v) {
                items.push((Expr::Variable(v.to_string()), v.to_string()));
            }
        };
        let mut need_expr = |items: &mut Vec<(Expr, String)>, e: &Expr| -> String {
            let name = format!("__u{exprs}");
            exprs += 1;
            items.push((e.clone(), name.clone()));
            name
        };
        let mut created: Vec<String> = Vec::new();
        let mut clause_plans: Vec<()> = Vec::new();
        let _ = &mut clause_plans;
        for clause in &query.clauses {
            match clause {
                Clause::Create(pattern) => {
                    for p in &pattern.paths {
                        for node in std::iter::once(&p.start).chain(p.steps.iter().map(|(_, n)| n))
                        {
                            if let Some(v) = &node.variable {
                                if bound_vars.iter().any(|b| b == v) {
                                    need_var(&mut items, v);
                                } else if !created.contains(v) {
                                    created.push(v.clone());
                                }
                            }
                            for (_, e) in &node.props {
                                for v in e.free_variables() {
                                    need_var(&mut items, &v);
                                }
                            }
                        }
                        for (r, _) in &p.steps {
                            for (_, e) in &r.props {
                                for v in e.free_variables() {
                                    need_var(&mut items, &v);
                                }
                            }
                        }
                    }
                }
                Clause::Delete { exprs: es, .. } => {
                    for e in es {
                        match e {
                            Expr::Variable(v) => need_var(&mut items, v),
                            _ => {
                                return Err(EngineError::Unsupported(
                                    "DELETE of a non-variable expression".into(),
                                ))
                            }
                        }
                    }
                }
                Clause::Set(sets) => {
                    for item in sets {
                        match item {
                            SetItem::Property {
                                variable, value, ..
                            } => {
                                need_var(&mut items, variable);
                                for v in value.free_variables() {
                                    need_var(&mut items, &v);
                                }
                            }
                            SetItem::Labels { variable, .. } => need_var(&mut items, variable),
                        }
                    }
                }
                Clause::Remove(removes) => {
                    for item in removes {
                        match item {
                            RemoveItem::Property { variable, .. }
                            | RemoveItem::Labels { variable, .. } => need_var(&mut items, variable),
                        }
                    }
                }
                _ => {}
            }
        }
        // Value expressions are projected too (so SET values can reference
        // matched properties). We project them as extra columns.
        let mut items_with_values = items.clone();
        for clause in &query.clauses {
            match clause {
                Clause::Set(sets) => {
                    for item in sets {
                        if let SetItem::Property { value, .. } = item {
                            if !matches!(value, Expr::Literal(_)) {
                                need_expr(&mut items_with_values, value);
                            }
                        }
                    }
                }
                Clause::Create(pattern) => {
                    for p in &pattern.paths {
                        for node in std::iter::once(&p.start).chain(p.steps.iter().map(|(_, n)| n))
                        {
                            for (_, e) in &node.props {
                                if !matches!(e, Expr::Literal(_)) {
                                    need_expr(&mut items_with_values, e);
                                }
                            }
                        }
                        for (r, _) in &p.steps {
                            for (_, e) in &r.props {
                                if !matches!(e, Expr::Literal(_)) {
                                    need_expr(&mut items_with_values, e);
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(UpdatePlan {
            items: items_with_values,
            has_reading,
        })
    }

    /// Evaluate the reading part and build the atomic transaction.
    fn to_transaction(
        &self,
        query: &Query,
        graph: &PropertyGraph,
    ) -> Result<(Transaction, UpdateStats), EngineError> {
        // Bindings: one row per match (bag semantics).
        let (columns, rows): (Vec<String>, Vec<Tuple>) = if self.has_reading {
            let compiled = compile_bindings(query, &self.items)?;
            let bag = pgq_eval::evaluate(&compiled.fra, graph);
            let mut rows = Vec::new();
            for (t, m) in bag {
                for _ in 0..m.max(0) {
                    rows.push(t.clone());
                }
            }
            (compiled.columns.clone(), rows)
        } else {
            (Vec::new(), vec![Tuple::unit()])
        };
        let col = |name: &str| -> Option<usize> { columns.iter().position(|c| c == name) };
        // Column index for a projected value expression.
        let expr_col =
            |e: &Expr| -> Option<usize> { self.items.iter().position(|(ie, _)| ie == e) };

        let mut tx = Transaction::new();
        let mut stats = UpdateStats::default();
        let mut deleted_nodes: Vec<pgq_common::ids::VertexId> = Vec::new();
        let mut deleted_edges: Vec<pgq_common::ids::EdgeId> = Vec::new();

        for clause in &query.clauses {
            match clause {
                Clause::Create(pattern) => {
                    for row in &rows {
                        self.create_pattern(pattern, row, &columns, &mut tx, &mut stats, expr_col)?;
                    }
                }
                Clause::Delete { detach, exprs } => {
                    for row in &rows {
                        for e in exprs {
                            let Expr::Variable(v) = e else { unreachable!() };
                            let i = col(v).ok_or_else(|| {
                                EngineError::Unsupported(format!(
                                    "DELETE of unbound variable `{v}`"
                                ))
                            })?;
                            match row.get(i) {
                                Value::Node(n) => {
                                    if !deleted_nodes.contains(n) {
                                        deleted_nodes.push(*n);
                                        tx.delete_vertex(*n, *detach);
                                        stats.nodes_deleted += 1;
                                    }
                                }
                                Value::Rel(r) => {
                                    if !deleted_edges.contains(r) {
                                        deleted_edges.push(*r);
                                        tx.delete_edge(*r);
                                        stats.relationships_deleted += 1;
                                    }
                                }
                                Value::Null => {}
                                other => {
                                    return Err(EngineError::Unsupported(format!(
                                        "DELETE of a {} value",
                                        other.type_name()
                                    )))
                                }
                            }
                        }
                    }
                }
                Clause::Set(sets) => {
                    for row in &rows {
                        for item in sets {
                            match item {
                                SetItem::Property {
                                    variable,
                                    key,
                                    value,
                                } => {
                                    let vi = col(variable).ok_or_else(|| {
                                        EngineError::Unsupported(format!(
                                            "SET on unbound variable `{variable}`"
                                        ))
                                    })?;
                                    let val = match value {
                                        Expr::Literal(v) => v.clone(),
                                        e => {
                                            let ci = expr_col(e).expect("projected");
                                            row.get(ci).clone()
                                        }
                                    };
                                    let key = Symbol::intern(key);
                                    match row.get(vi) {
                                        Value::Node(n) => {
                                            tx.set_vertex_prop(*n, key, val);
                                            stats.properties_set += 1;
                                        }
                                        Value::Rel(r) => {
                                            tx.set_edge_prop(*r, key, val);
                                            stats.properties_set += 1;
                                        }
                                        Value::Null => {}
                                        other => {
                                            return Err(EngineError::Unsupported(format!(
                                                "SET on a {} value",
                                                other.type_name()
                                            )))
                                        }
                                    }
                                }
                                SetItem::Labels { variable, labels } => {
                                    let vi = col(variable).ok_or_else(|| {
                                        EngineError::Unsupported(format!(
                                            "SET on unbound variable `{variable}`"
                                        ))
                                    })?;
                                    if let Value::Node(n) = row.get(vi) {
                                        for l in labels {
                                            tx.add_label(*n, Symbol::intern(l));
                                            stats.labels_added += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Clause::Remove(removes) => {
                    for row in &rows {
                        for item in removes {
                            match item {
                                RemoveItem::Property { variable, key } => {
                                    let vi = col(variable).ok_or_else(|| {
                                        EngineError::Unsupported(format!(
                                            "REMOVE on unbound variable `{variable}`"
                                        ))
                                    })?;
                                    let key = Symbol::intern(key);
                                    match row.get(vi) {
                                        Value::Node(n) => {
                                            tx.set_vertex_prop(*n, key, Value::Null);
                                            stats.properties_set += 1;
                                        }
                                        Value::Rel(r) => {
                                            tx.set_edge_prop(*r, key, Value::Null);
                                            stats.properties_set += 1;
                                        }
                                        _ => {}
                                    }
                                }
                                RemoveItem::Labels { variable, labels } => {
                                    let vi = col(variable).ok_or_else(|| {
                                        EngineError::Unsupported(format!(
                                            "REMOVE on unbound variable `{variable}`"
                                        ))
                                    })?;
                                    if let Value::Node(n) = row.get(vi) {
                                        for l in labels {
                                            tx.remove_label(*n, Symbol::intern(l));
                                            stats.labels_removed += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Ok((tx, stats))
    }

    fn create_pattern(
        &self,
        pattern: &Pattern,
        row: &Tuple,
        columns: &[String],
        tx: &mut Transaction,
        stats: &mut UpdateStats,
        expr_col: impl Fn(&Expr) -> Option<usize> + Copy,
    ) -> Result<(), EngineError> {
        let col = |name: &str| columns.iter().position(|c| c == name);
        let eval_props = |props: &[(String, Expr)]| -> Result<Properties, EngineError> {
            let mut out = Properties::new();
            for (k, e) in props {
                let v = match e {
                    Expr::Literal(v) => v.clone(),
                    e => {
                        let ci = expr_col(e).ok_or_else(|| {
                            EngineError::Unsupported(format!(
                                "unprojected CREATE property expression {e}"
                            ))
                        })?;
                        row.get(ci).clone()
                    }
                };
                out.set(Symbol::intern(k), v);
            }
            Ok(out)
        };
        // Per-row map from variable name to the node it denotes.
        let mut local: Vec<(String, NodeRef)> = Vec::new();
        for path in &pattern.paths {
            if path.variable.is_some() {
                return Err(EngineError::Unsupported("named paths in CREATE".into()));
            }
            let mut resolve_node = |node: &pgq_parser::ast::NodePattern,
                                    tx: &mut Transaction,
                                    stats: &mut UpdateStats|
             -> Result<NodeRef, EngineError> {
                if let Some(v) = &node.variable {
                    if let Some((_, r)) = local.iter().find(|(n, _)| n == v) {
                        return Ok(*r);
                    }
                    if let Some(i) = col(v) {
                        let Value::Node(n) = row.get(i) else {
                            return Err(EngineError::Unsupported(format!(
                                "CREATE endpoint `{v}` is not a node"
                            )));
                        };
                        let r = NodeRef::Existing(*n);
                        local.push((v.clone(), r));
                        return Ok(r);
                    }
                }
                let labels: Vec<Symbol> = node.labels.iter().map(|l| Symbol::intern(l)).collect();
                let props = eval_props(&node.props)?;
                let r = tx.create_vertex(labels, props);
                stats.nodes_created += 1;
                if let Some(v) = &node.variable {
                    local.push((v.clone(), r));
                }
                Ok(r)
            };
            let mut prev = resolve_node(&path.start, tx, stats)?;
            for (rel, node) in &path.steps {
                if rel.range.is_some() {
                    return Err(EngineError::Unsupported(
                        "variable-length relationships in CREATE".into(),
                    ));
                }
                if rel.types.len() != 1 {
                    return Err(EngineError::Unsupported(
                        "CREATE relationships need exactly one type".into(),
                    ));
                }
                let next = resolve_node(node, tx, stats)?;
                let ty = Symbol::intern(&rel.types[0]);
                let props = eval_props(&rel.props)?;
                use pgq_common::dir::Direction;
                match rel.direction {
                    Direction::Out => {
                        tx.create_edge(prev, next, ty, props);
                    }
                    Direction::In => {
                        tx.create_edge(next, prev, ty, props);
                    }
                    Direction::Both => {
                        return Err(EngineError::Unsupported(
                            "undirected relationships in CREATE".into(),
                        ))
                    }
                }
                stats.relationships_created += 1;
                prev = next;
            }
        }
        Ok(())
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}
