//! Experiment E7 (Criterion): incremental transitive closure — edge
//! churn at the leaf vs near the root of reply trees, against full
//! recompute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_algebra::pipeline::CompileOptions;
use pgq_bench::compile;
use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_graph::tx::Transaction;
use pgq_workloads::trees::reply_tree;
use pgq_workloads::EXAMPLE_QUERY;

fn bench_transitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitive");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(2500));
    for (depth, fanout) in [(4usize, 2usize), (6, 2), (3, 4)] {
        let label = format!("{depth}x{fanout}");
        let tree = reply_tree(depth, fanout);
        let leaf_edge = *tree.edges.last().unwrap();
        let root_edge = tree.edges[0];

        for (which, edge) in [("leaf", leaf_edge), ("root", root_edge)] {
            let data = tree.graph.edge(edge).unwrap().clone();
            let mut engine = GraphEngine::from_graph(tree.graph.clone());
            engine.register_view("t", EXAMPLE_QUERY).unwrap();
            group.bench_function(
                BenchmarkId::new(format!("ivm_churn/{which}"), &label),
                |b| {
                    b.iter_batched(
                        || engine.clone(),
                        |mut e| {
                            let mut tx = Transaction::new();
                            tx.delete_edge(edge);
                            e.apply(&tx).unwrap();
                            let mut tx = Transaction::new();
                            tx.create_edge(data.src, data.dst, data.ty, data.props.clone());
                            e.apply(&tx).unwrap();
                            e
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }

        let compiled = compile(EXAMPLE_QUERY, CompileOptions::default());
        group.bench_function(BenchmarkId::new("recompute", &label), |b| {
            b.iter(|| criterion::black_box(evaluate_consolidated(&compiled.fra, &tree.graph)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transitive);
criterion_main!(benches);
