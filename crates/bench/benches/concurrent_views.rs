//! Parallel delta propagation (Criterion): language churn across many
//! independent reply-tree branches — one var-length view per branch —
//! maintained at propagation widths 1, 2, 4 and 8. One transaction
//! flips every branch root's `lang`, dirtying every branch's dataflow
//! region at once (the widest frontier), so the thread scaling of the
//! worker pool is directly visible. See `report.rs` for the certified
//! tx/s numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::GraphEngine;
use pgq_workloads::branches::{branch_forest, branch_query, churn_all};

fn bench_concurrent_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_views");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(2500));
    let forest = branch_forest(8, 6, 2);
    let mut template = GraphEngine::from_graph(forest.graph.clone());
    for i in 0..forest.branches.len() {
        template
            .register_view(&format!("b{i}"), &branch_query(i))
            .unwrap();
    }
    let retract = churn_all(&forest, "de");
    let assert = churn_all(&forest, "en");
    for threads in [1usize, 2, 4, 8] {
        let mut engine = template.clone();
        engine.set_threads(threads);
        // Build the worker pool now so the per-iteration clones share
        // it (via `Arc`) instead of spawning threads inside the timing.
        engine.apply(&retract).unwrap();
        engine.apply(&assert).unwrap();
        group.bench_function(BenchmarkId::new("ivm_churn_all", threads), |b| {
            b.iter_batched(
                || engine.clone(),
                |mut e| {
                    e.apply(&retract).unwrap();
                    e.apply(&assert).unwrap();
                    e
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_views);
criterion_main!(benches);
