//! Experiment E6 (Criterion): the paper's running-example query
//! maintained under a social-network update stream, across scale
//! factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_algebra::pipeline::CompileOptions;
use pgq_bench::compile;
use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_workloads::social::{generate_social, queries as sq, SocialParams};

fn bench_social(c: &mut Criterion) {
    let mut group = c.benchmark_group("social_ivm");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(2500));
    for sf in [0.1f64, 0.5, 1.0] {
        let mut net = generate_social(SocialParams::scale(sf, 42));
        let stream = net.update_stream(50, (4, 2, 3, 1));

        let mut engine = GraphEngine::from_graph(net.graph.clone());
        engine
            .register_view("threads", sq::SAME_LANG_THREAD)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("ivm", sf), &stream, |b, stream| {
            b.iter_batched(
                || engine.clone(),
                |mut e| {
                    for tx in stream {
                        e.apply(tx).unwrap();
                    }
                    e
                },
                criterion::BatchSize::LargeInput,
            )
        });

        let compiled = compile(sq::SAME_LANG_THREAD, CompileOptions::default());
        group.bench_with_input(BenchmarkId::new("recompute", sf), &stream, |b, stream| {
            b.iter_batched(
                || net.graph.clone(),
                |mut g| {
                    for tx in stream {
                        g.apply(tx).unwrap();
                        criterion::black_box(evaluate_consolidated(&compiled.fra, &g));
                    }
                    g
                },
                criterion::BatchSize::LargeInput,
            )
        });

        // Initial view build (the IVM's upfront cost).
        group.bench_with_input(BenchmarkId::new("ivm_build", sf), &net.graph, |b, graph| {
            b.iter_batched(
                || GraphEngine::from_graph(graph.clone()),
                |mut e| {
                    e.register_view("threads", sq::SAME_LANG_THREAD).unwrap();
                    e
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_social);
criterion_main!(benches);
