//! motifs (Criterion): per-transaction maintenance cost of cyclic-motif
//! views on the skewed motif workload — the fused ⨝ⁿ worst-case optimal
//! plan vs the binary join tree over the *same* shared network
//! (`register_view` vs `register_view_binary`).
//!
//! Series:
//! * `wcoj_<query>/<size>` — planner fuses the cyclic region into one
//!   ⨝ⁿ node (deltas touch motif instances, never wedges);
//! * `binary_<query>/<size>` — the pre-wcoj binary join tree, which
//!   materialises every wedge of the skewed graph in join memories.
//!
//! The worst-case-optimality claim is asymptotic: the wcoj/binary gap
//! must *grow* between the two sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::GraphEngine;
use pgq_workloads::motifs::{generate_motifs, queries as mq, MotifParams};

fn bench_motifs(c: &mut Criterion) {
    let mut group = c.benchmark_group("motifs");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(2000));

    for (size, params) in [
        ("quick", MotifParams::quick()),
        ("default", MotifParams::default()),
    ] {
        let mut net = generate_motifs(params);
        let stream = net.churn(50, params.tri_bias);
        for (query_name, q) in [
            ("triangles", mq::TRIANGLES),
            ("four_cycles", mq::FOUR_CYCLES),
        ] {
            for (mode, wcoj) in [("wcoj", true), ("binary", false)] {
                let mut engine = GraphEngine::from_graph(net.graph.clone());
                if wcoj {
                    engine.register_view("v", q).unwrap();
                } else {
                    engine.register_view_binary("v", q).unwrap();
                }
                group.bench_with_input(
                    BenchmarkId::new(format!("{mode}_{query_name}"), size),
                    &stream,
                    |b, stream| {
                        b.iter_batched(
                            || engine.clone(),
                            |mut e| {
                                for tx in stream {
                                    e.apply(tx).unwrap();
                                }
                                e
                            },
                            criterion::BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_motifs);
criterion_main!(benches);
