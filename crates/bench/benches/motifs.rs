//! motifs (Criterion): per-transaction maintenance cost of cyclic-motif
//! views on the skewed motif workload — the fused ⨝ⁿ worst-case optimal
//! plan vs the binary join tree over the *same* shared network.
//!
//! Series:
//! * `wcoj_<query>/<size>` — the cyclic region pinned to one ⨝ⁿ node
//!   (`register_view_wcoj_forced`; deltas touch motif instances, never
//!   wedges). Forced rather than cost-based, so the series keeps
//!   measuring the fused node even where the catalog gate would pick
//!   the binary tree (quick-scale triangles, four-cycles everywhere —
//!   see `tests/fuse_gate.rs` for the gate's pinned decisions);
//! * `binary_<query>/<size>` — the pre-wcoj binary join tree, which
//!   materialises every wedge of the skewed graph in join memories;
//! * `hub_{sorted,hash}/<spokes>` — the two ⨝ⁿ intersection backends on
//!   the two-hub galloping workload: sorted-run sub-indexes (leapfrog
//!   with galloping seeks) vs the hash-bucket tries.
//!
//! The worst-case-optimality claim is asymptotic: the wcoj/binary gap
//! must *grow* between the two sizes, and the sorted/hash gap with the
//! hub degree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::GraphEngine;
use pgq_workloads::motifs::{
    generate_hub_motifs, generate_motifs, queries as mq, HubMotifParams, MotifParams,
};

fn bench_motifs(c: &mut Criterion) {
    let mut group = c.benchmark_group("motifs");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(2000));

    for (size, params) in [
        ("quick", MotifParams::quick()),
        ("default", MotifParams::default()),
    ] {
        let mut net = generate_motifs(params);
        let stream = net.churn(50, params.tri_bias);
        for (query_name, q) in [
            ("triangles", mq::TRIANGLES),
            ("four_cycles", mq::FOUR_CYCLES),
        ] {
            for (mode, wcoj) in [("wcoj", true), ("binary", false)] {
                let mut engine = GraphEngine::from_graph(net.graph.clone());
                if wcoj {
                    engine.register_view_wcoj_forced("v", q, true).unwrap();
                } else {
                    engine.register_view_binary("v", q).unwrap();
                }
                group.bench_with_input(
                    BenchmarkId::new(format!("{mode}_{query_name}"), size),
                    &stream,
                    |b, stream| {
                        b.iter_batched(
                            || engine.clone(),
                            |mut e| {
                                for tx in stream {
                                    e.apply(tx).unwrap();
                                }
                                e
                            },
                            criterion::BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }

    // Backend comparison on the hub motif: the bridge-edge flaps in the
    // churn script intersect two hub-degree adjacency lists per pass.
    let params = HubMotifParams::quick();
    let mut net = generate_hub_motifs(params);
    let stream = net.churn(30);
    for (mode, sorted) in [("hub_sorted", true), ("hub_hash", false)] {
        let mut engine = GraphEngine::from_graph(net.graph.clone());
        engine
            .register_view_wcoj_forced("v", mq::TRIANGLES, sorted)
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new(mode, params.spokes),
            &stream,
            |b, stream| {
                b.iter_batched(
                    || engine.clone(),
                    |mut e| {
                        for tx in stream {
                            e.apply(tx).unwrap();
                        }
                        e
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_motifs);
criterion_main!(benches);
