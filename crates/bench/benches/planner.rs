//! planner (Criterion): per-transaction maintenance cost on the skewed
//! hub fan-out workload, cost-based join order vs the syntactic order
//! (the same query registered with the planner disabled).
//!
//! Series:
//! * `planned/<query>` — `GraphEngine::register_view` (cost-based
//!   join order from the live cardinality catalog);
//! * `syntactic/<query>` — `GraphEngine::register_view_unplanned`
//!   (the written order, the pre-planner behaviour).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::GraphEngine;
use pgq_workloads::hub::{generate_hub, queries as hq, HubParams};

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(2000));

    let mut net = generate_hub(HubParams::default());
    let stream = net.update_stream(50);

    for (name, q) in [
        ("rare_topic_fans", hq::RARE_TOPIC_FANS),
        ("rare_cat_fans", hq::RARE_CAT_FANS),
    ] {
        for (series, planned) in [("planned", true), ("syntactic", false)] {
            let mut engine = GraphEngine::from_graph(net.graph.clone());
            if planned {
                engine.register_view("v", q).unwrap();
            } else {
                engine.register_view_unplanned("v", q).unwrap();
            }
            group.bench_with_input(BenchmarkId::new(series, name), &stream, |b, stream| {
                b.iter_batched(
                    || engine.clone(),
                    |mut e| {
                        for tx in stream {
                            e.apply(tx).unwrap();
                        }
                        e
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
