//! Experiment E8 (Criterion): fine-grained property updates (FGN) — a
//! single `SET lang` against the same logical change expressed as a
//! coarse delete+recreate, and against full recompute.

use criterion::{criterion_group, criterion_main, Criterion};
use pgq_algebra::pipeline::CompileOptions;
use pgq_bench::compile;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_graph::tx::Transaction;
use pgq_workloads::social::{generate_social, queries as sq, SocialParams};

fn bench_fgn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fgn");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(2500));
    let net = generate_social(SocialParams::scale(0.25, 42));
    let post = net.posts[0];

    let mut engine = GraphEngine::from_graph(net.graph.clone());
    engine
        .register_view("threads", sq::SAME_LANG_THREAD)
        .unwrap();

    group.bench_function("fine_grained_set", |b| {
        b.iter_batched(
            || engine.clone(),
            |mut e| {
                let mut tx = Transaction::new();
                tx.set_vertex_prop(post, Symbol::intern("lang"), Value::str("zz"));
                e.apply(&tx).unwrap();
                e
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("coarse_delete_recreate", |b| {
        b.iter_batched(
            || engine.clone(),
            |mut e| {
                let data = e.graph().vertex(post).unwrap().clone();
                let out: Vec<_> = e
                    .graph()
                    .out_edges(post)
                    .iter()
                    .map(|&ed| e.graph().edge(ed).unwrap().clone())
                    .collect();
                let inc: Vec<_> = e
                    .graph()
                    .in_edges(post)
                    .iter()
                    .map(|&ed| e.graph().edge(ed).unwrap().clone())
                    .collect();
                let mut tx = Transaction::new();
                tx.delete_vertex(post, true);
                let mut props = data.props.clone();
                props.set(Symbol::intern("lang"), Value::str("zz"));
                let nv = tx.create_vertex(data.labels.iter().copied(), props);
                for ed in out {
                    tx.create_edge(nv, ed.dst, ed.ty, ed.props.clone());
                }
                for ed in inc {
                    tx.create_edge(ed.src, nv, ed.ty, ed.props.clone());
                }
                e.apply(&tx).unwrap();
                e
            },
            criterion::BatchSize::LargeInput,
        )
    });

    let compiled = compile(sq::SAME_LANG_THREAD, CompileOptions::default());
    group.bench_function("recompute", |b| {
        b.iter(|| criterion::black_box(evaluate_consolidated(&compiled.fra, &net.graph)))
    });

    group.finish();
}

criterion_group!(benches, bench_fgn);
criterion_main!(benches);
