//! Experiment E10 (Criterion): the paper's step-3 ablation — maintaining
//! the same view with inferred-schema property push-down vs carrying
//! whole property maps through the dataflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_algebra::pipeline::CompileOptions;
use pgq_algebra::SchemaMode;
use pgq_core::GraphEngine;
use pgq_workloads::social::{generate_social, queries as sq, SocialParams};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pushdown");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(2500));
    let mut net = generate_social(SocialParams::scale(0.25, 42));
    let stream = net.update_stream(50, (2, 0, 2, 0));
    for (label, mode) in [
        ("pushdown", SchemaMode::Inferred),
        ("carry_maps", SchemaMode::CarryMaps),
    ] {
        let options = CompileOptions {
            schema_mode: mode,
            ..CompileOptions::default()
        };
        let mut engine = GraphEngine::from_graph(net.graph.clone());
        engine
            .register_view_with("threads", sq::SAME_LANG_THREAD, options)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("maintain", label), &stream, |b, stream| {
            b.iter_batched(
                || engine.clone(),
                |mut e| {
                    for tx in stream {
                        e.apply(tx).unwrap();
                    }
                    e
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("build", label), &net.graph, |b, graph| {
            b.iter_batched(
                || GraphEngine::from_graph(graph.clone()),
                |mut e| {
                    e.register_view_with("threads", sq::SAME_LANG_THREAD, options)
                        .unwrap();
                    e
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
