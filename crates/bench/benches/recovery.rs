//! Durability recovery (Criterion): warm restart from a snapshot with
//! operator state vs the cold baseline — the same image with the state
//! section stripped, so every network node re-initialises from the
//! graph. Both sides decode the same snapshot and rebuild the same
//! graph; the delta is what fingerprint-keyed state restore buys. The
//! durable image lives on an in-memory Vfs so host disk never enters
//! the measurement. See `report.rs` for the certified `recovery_*`
//! numbers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_core::GraphEngine;
use pgq_durability::{MemDisk, Snapshot, Vfs};
use pgq_graph::tx::{NodeRef, Transaction};
use pgq_workloads::social::{generate_social, queries as sq, SocialParams};

/// Build a durable image of the social graph with join-heavy standing
/// views, returning (full image, state-stripped image).
fn build_images(sf: f64) -> (MemDisk, MemDisk) {
    let net = generate_social(SocialParams::scale(sf, 42));
    let disk = MemDisk::new();
    {
        let mut engine = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
        let mut tx = Transaction::new();
        let mut ids: Vec<_> = net.graph.vertex_ids().collect();
        ids.sort_unstable();
        let slot: std::collections::HashMap<_, _> =
            ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for id in &ids {
            let v = net.graph.vertex(*id).unwrap();
            tx.create_vertex(v.labels.iter().copied(), v.props.clone());
        }
        let mut eids: Vec<_> = net.graph.edge_ids().collect();
        eids.sort_unstable();
        for id in eids {
            let e = net.graph.edge(id).unwrap();
            tx.create_edge(
                NodeRef::New(slot[&e.src]),
                NodeRef::New(slot[&e.dst]),
                e.ty,
                e.props.clone(),
            );
        }
        engine.apply(&tx).unwrap();
        engine.register_view("likes", sq::FRIEND_LIKES).unwrap();
        for (i, q) in pgq_workloads::social::OVERLAPPING_QUERIES
            .iter()
            .enumerate()
        {
            engine.register_view(&format!("ov{i}"), q).unwrap();
        }
        engine.snapshot().unwrap();
    }
    let cold_disk = MemDisk::new();
    {
        let src = disk.vfs();
        let dst = cold_disk.vfs();
        let generation = src
            .list()
            .unwrap()
            .iter()
            .filter_map(|n| pgq_durability::snapshot::parse_snap_name(n))
            .max()
            .expect("reference snapshot present");
        let mut snap = Snapshot::load(&src, generation).unwrap().unwrap();
        snap.states.clear();
        snap.write(&dst, generation).unwrap();
        let wal = pgq_durability::wal::wal_file(generation);
        if let Some(bytes) = src.read(&wal).unwrap() {
            dst.append(&wal, &bytes).unwrap();
        }
    }
    (disk, cold_disk)
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(2500));
    for (tag, sf) in [("s", 0.1), ("m", 0.3)] {
        let (warm_disk, cold_disk) = build_images(sf);
        let warm_vfs = Arc::new(warm_disk.vfs());
        let cold_vfs = Arc::new(cold_disk.vfs());
        group.bench_function(BenchmarkId::new("warm_open", tag), |b| {
            b.iter(|| {
                criterion::black_box(GraphEngine::open_durable_with(warm_vfs.clone()).unwrap())
            })
        });
        group.bench_function(BenchmarkId::new("cold_open", tag), |b| {
            b.iter(|| {
                criterion::black_box(GraphEngine::open_durable_with(cold_vfs.clone()).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
