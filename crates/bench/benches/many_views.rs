//! many_views (Criterion): per-transaction maintenance cost as N
//! overlapping standing queries grow — the workload the shared dataflow
//! network exists for.
//!
//! Three series per N:
//! * `shared_identical/N` — N copies of the same query on one engine;
//!   hash-consing collapses them to one operator chain, so cost should
//!   be flat in N.
//! * `shared_overlap/N` — N distinct queries over the same Post/REPLY/
//!   Comm pattern (different projections/filters) on one engine; the
//!   common prefix is shared, so cost should grow sublinearly in N.
//! * `private/N` — the same N overlapping queries, each maintained by
//!   its own isolated single-view network (the pre-sharing
//!   architecture); the O(N) baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_algebra::pipeline::CompileOptions;
use pgq_bench::compile;
use pgq_core::GraphEngine;
use pgq_ivm::MaterializedView;
use pgq_workloads::social::{generate_social, SocialParams, OVERLAPPING_QUERIES};

fn bench_many_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("many_views");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(2000));

    let mut net = generate_social(SocialParams::scale(0.1, 42));
    let stream = net.update_stream(50, (4, 2, 3, 1));

    // The first benchmark of a process reads ~1.5-2× slow on managed
    // boxes (frequency governor / container scheduling ramp-up), which
    // would masquerade as "1 view costs double": burn the ramp-up on a
    // realistic throwaway workload before anything is measured.
    {
        let mut warm = GraphEngine::from_graph(net.graph.clone());
        warm.register_view("warm", OVERLAPPING_QUERIES[0]).unwrap();
        let end = std::time::Instant::now() + std::time::Duration::from_millis(1500);
        while std::time::Instant::now() < end {
            let mut e = warm.clone();
            for tx in &stream {
                e.apply(tx).unwrap();
            }
            criterion::black_box(e);
        }
    }

    for n in [1usize, 4, 16] {
        // N identical views, one shared chain.
        let mut engine = GraphEngine::from_graph(net.graph.clone());
        for i in 0..n {
            engine
                .register_view(&format!("v{i}"), OVERLAPPING_QUERIES[0])
                .unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("shared_identical", n),
            &stream,
            |b, stream| {
                b.iter_batched(
                    || engine.clone(),
                    |mut e| {
                        for tx in stream {
                            e.apply(tx).unwrap();
                        }
                        e
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );

        // N overlapping (distinct) views on one shared network.
        let mut engine = GraphEngine::from_graph(net.graph.clone());
        for (i, q) in OVERLAPPING_QUERIES.iter().take(n).enumerate() {
            engine.register_view(&format!("v{i}"), q).unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("shared_overlap", n),
            &stream,
            |b, stream| {
                b.iter_batched(
                    || engine.clone(),
                    |mut e| {
                        for tx in stream {
                            e.apply(tx).unwrap();
                        }
                        e
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );

        // The pre-sharing O(N) baseline: one private network per view.
        let views: Vec<MaterializedView> = OVERLAPPING_QUERIES
            .iter()
            .take(n)
            .enumerate()
            .map(|(i, q)| {
                let compiled = compile(q, CompileOptions::default());
                MaterializedView::create(format!("p{i}"), &compiled, &net.graph).unwrap()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("private", n), &stream, |b, stream| {
            b.iter_batched(
                || (net.graph.clone(), views.clone()),
                |(mut g, mut views)| {
                    for tx in stream {
                        let events = g.apply(tx).unwrap();
                        for v in &mut views {
                            v.on_transaction(&g, &events);
                        }
                    }
                    (g, views)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_many_views);
criterion_main!(benches);
