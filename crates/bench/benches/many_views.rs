//! many_views (Criterion): per-transaction maintenance cost as N
//! overlapping standing queries grow — the workload the shared dataflow
//! network exists for.
//!
//! Series per N:
//! * `shared_identical/N` — N copies of the same query on one engine;
//!   hash-consing collapses them to one operator chain, so cost should
//!   be flat in N.
//! * `shared_renamed/N` — N *alpha-renamed* copies of the same query
//!   (fresh variable names per copy); canonicalisation renames them to
//!   one positional form, so they must behave exactly like
//!   `shared_identical` (before canonicalisation they cost like
//!   `private`).
//! * `shared_overlap/N` — N distinct queries over the same Post/REPLY/
//!   Comm pattern (different projections/filters) on one engine; the
//!   common prefix is shared, so cost should grow sublinearly in N.
//! * `shared_where_family/N` — N queries differing only in a top-level
//!   `WHERE` predicate; the whole stateful prefix is shared and each
//!   member pays one private stateless σ.
//! * `private/N`, `private_renamed/N`, `private_where_family/N` — the
//!   same workloads, each view maintained by its own isolated
//!   single-view network (the pre-sharing architecture); the O(N)
//!   baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_bench::{private_views, shared_engine};
use pgq_core::GraphEngine;
use pgq_workloads::social::{
    generate_social, renamed_overlap_query, SocialParams, OVERLAPPING_QUERIES, WHERE_FAMILY_QUERIES,
};

fn bench_many_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("many_views");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(2000));

    let mut net = generate_social(SocialParams::scale(0.1, 42));
    let stream = net.update_stream(50, (4, 2, 3, 1));

    // The first benchmark of a process reads ~1.5-2× slow on managed
    // boxes (frequency governor / container scheduling ramp-up), which
    // would masquerade as "1 view costs double": burn the ramp-up on a
    // realistic throwaway workload before anything is measured.
    {
        let mut warm = GraphEngine::from_graph(net.graph.clone());
        warm.register_view("warm", OVERLAPPING_QUERIES[0]).unwrap();
        let end = std::time::Instant::now() + std::time::Duration::from_millis(1500);
        while std::time::Instant::now() < end {
            let mut e = warm.clone();
            for tx in &stream {
                e.apply(tx).unwrap();
            }
            criterion::black_box(e);
        }
    }

    let identical: Vec<String> = (0..16)
        .map(|_| OVERLAPPING_QUERIES[0].to_string())
        .collect();
    let renamed: Vec<String> = (0..16).map(renamed_overlap_query).collect();
    let overlap: Vec<String> = OVERLAPPING_QUERIES.iter().map(|q| q.to_string()).collect();
    let where_family: Vec<String> = WHERE_FAMILY_QUERIES.iter().map(|q| q.to_string()).collect();

    for n in [1usize, 4, 16] {
        for (series, queries) in [
            ("shared_identical", &identical),
            ("shared_renamed", &renamed),
            ("shared_overlap", &overlap),
            ("shared_where_family", &where_family),
        ] {
            let engine = shared_engine(&net.graph, queries, n);
            group.bench_with_input(BenchmarkId::new(series, n), &stream, |b, stream| {
                b.iter_batched(
                    || engine.clone(),
                    |mut e| {
                        for tx in stream {
                            e.apply(tx).unwrap();
                        }
                        e
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }

        for (series, queries) in [
            ("private", &overlap),
            ("private_renamed", &renamed),
            ("private_where_family", &where_family),
        ] {
            let views = private_views(&net.graph, queries, n);
            group.bench_with_input(BenchmarkId::new(series, n), &stream, |b, stream| {
                b.iter_batched(
                    || (net.graph.clone(), views.clone()),
                    |(mut g, mut views)| {
                        for tx in stream {
                            let events = g.apply(tx).unwrap();
                            for v in &mut views {
                                v.on_transaction(&g, &events);
                            }
                        }
                        (g, views)
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_many_views);
criterion_main!(benches);
