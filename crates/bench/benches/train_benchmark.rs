//! Experiment E5 (Criterion): per-transaction view maintenance vs
//! from-scratch recompute on the railway validation workload, across
//! model sizes and all four validation queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_algebra::pipeline::CompileOptions;
use pgq_bench::compile;
use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_workloads::railway::{generate_railway, queries as rq, RailwayParams};

fn bench_train(c: &mut Criterion) {
    let queries = [
        ("PosLength", rq::POS_LENGTH),
        ("SwitchSet", rq::SWITCH_SET),
        ("RouteSensor", rq::ROUTE_SENSOR),
        ("ConnectedSegments", rq::CONNECTED_SEGMENTS),
    ];
    let mut group = c.benchmark_group("train_benchmark");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(2500));
    for k in [2u32, 4, 6] {
        let mut rw = generate_railway(RailwayParams::size(k, 7));
        let stream = rw.fault_stream(50);
        for (name, q) in queries {
            // IVM: engine with the view registered; each iteration applies
            // the whole 50-transaction stream on a fresh clone.
            let mut engine = GraphEngine::from_graph(rw.graph.clone());
            engine.register_view(name, q).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("ivm/{name}"), 1u32 << k),
                &stream,
                |b, stream| {
                    b.iter_batched(
                        || engine.clone(),
                        |mut e| {
                            for tx in stream {
                                e.apply(tx).unwrap();
                            }
                            e
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
            // Recompute: apply + full re-evaluation per transaction.
            let compiled = compile(q, CompileOptions::default());
            group.bench_with_input(
                BenchmarkId::new(format!("recompute/{name}"), 1u32 << k),
                &stream,
                |b, stream| {
                    b.iter_batched(
                        || rw.graph.clone(),
                        |mut g| {
                            for tx in stream {
                                g.apply(tx).unwrap();
                                criterion::black_box(evaluate_consolidated(&compiled.fra, &g));
                            }
                            g
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
