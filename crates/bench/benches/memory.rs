//! Experiment E9 (Criterion): the IVM trade-off — initial view build
//! (network construction + first evaluation, paying for the memories)
//! against a single from-scratch evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgq_algebra::pipeline::CompileOptions;
use pgq_bench::compile;
use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_workloads::railway::{generate_railway, queries as rq, RailwayParams};

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_tradeoff");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(2500));
    for k in [2u32, 4, 6] {
        let rw = generate_railway(RailwayParams::size(k, 7));
        for (name, q) in [
            ("RouteSensor", rq::ROUTE_SENSOR),
            ("SegmentReach", rq::SEGMENT_REACH),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("ivm_build/{name}"), 1u32 << k),
                &rw.graph,
                |b, graph| {
                    b.iter_batched(
                        || GraphEngine::from_graph(graph.clone()),
                        |mut e| {
                            e.register_view(name, q).unwrap();
                            e
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
            let compiled = compile(q, CompileOptions::default());
            group.bench_with_input(
                BenchmarkId::new(format!("one_recompute/{name}"), 1u32 << k),
                &rw.graph,
                |b, graph| {
                    b.iter(|| criterion::black_box(evaluate_consolidated(&compiled.fra, graph)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
