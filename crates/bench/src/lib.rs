#![warn(missing_docs)]
//! Shared measurement harness for the experiment suite (E5–E10).
//!
//! Every experiment compares two maintenance strategies over the same
//! update stream:
//!
//! * **IVM** — a [`pgq_core::GraphEngine`] with registered views applies
//!   each transaction and lets the dataflow propagate deltas;
//! * **recompute** — the paper's implicit baseline: apply the
//!   transaction, then re-evaluate the query from scratch with
//!   [`pgq_eval`].
//!
//! The binary `report` prints the EXPERIMENTS.md tables; the Criterion
//! benches under `benches/` wrap the same routines for statistically
//! robust timings.

use std::time::{Duration, Instant};

use pgq_algebra::pipeline::{compile_query_with, CompileOptions};
use pgq_algebra::CompiledQuery;
use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_parser::parse_query;

/// Compile a query with options (panicking on error — benchmark inputs
/// are fixed).
pub fn compile(query: &str, options: CompileOptions) -> CompiledQuery {
    compile_query_with(&parse_query(query).expect("parses"), options).expect("compiles")
}

/// Outcome of streaming updates through one strategy.
#[derive(Clone, Copy, Debug)]
pub struct StreamCost {
    /// Total wall time for the whole stream.
    pub total: Duration,
    /// Number of transactions.
    pub transactions: usize,
}

impl StreamCost {
    /// Mean latency per transaction in microseconds.
    pub fn us_per_tx(&self) -> f64 {
        self.total.as_micros() as f64 / self.transactions.max(1) as f64
    }
}

/// Register the first `n` of `queries` as views on one engine sharing a
/// single dataflow network — the "shared" side of the `many_views`
/// suites. The criterion bench and the BENCH.json certification both
/// use this setup, so they measure the identical configuration.
pub fn shared_engine(graph: &PropertyGraph, queries: &[String], n: usize) -> GraphEngine {
    let mut engine = GraphEngine::from_graph(graph.clone());
    for (i, q) in queries.iter().take(n).enumerate() {
        engine
            .register_view(&format!("v{i}"), q)
            .unwrap_or_else(|e| panic!("register v{i}: {e}"));
    }
    engine
}

/// Maintain the first `n` of `queries` as one private single-view
/// network each (the pre-sharing architecture) — the unshared baseline
/// of the `many_views` suites.
pub fn private_views(
    graph: &PropertyGraph,
    queries: &[String],
    n: usize,
) -> Vec<pgq_ivm::MaterializedView> {
    queries
        .iter()
        .take(n)
        .enumerate()
        .map(|(i, q)| {
            let compiled = compile(q, CompileOptions::default());
            pgq_ivm::MaterializedView::create(format!("p{i}"), &compiled, graph)
                .unwrap_or_else(|e| panic!("create view p{i}: {e}"))
        })
        .collect()
}

/// Apply `stream` to an engine with views registered for `queries`;
/// returns (initial build time, stream cost, final engine).
pub fn run_ivm(
    graph: &PropertyGraph,
    queries: &[(&str, &str)],
    options: CompileOptions,
    stream: &[Transaction],
) -> (Duration, StreamCost, GraphEngine) {
    let mut engine = GraphEngine::from_graph(graph.clone());
    let t0 = Instant::now();
    for (name, q) in queries {
        engine
            .register_view_with(name, q, options)
            .unwrap_or_else(|e| panic!("register {name}: {e}"));
    }
    let build = t0.elapsed();
    let t0 = Instant::now();
    for tx in stream {
        engine.apply(tx).expect("stream applies");
    }
    let total = t0.elapsed();
    (
        build,
        StreamCost {
            total,
            transactions: stream.len(),
        },
        engine,
    )
}

/// Apply `stream`, re-evaluating every query from scratch after each
/// transaction; returns (first evaluation time, stream cost).
pub fn run_recompute(
    graph: &PropertyGraph,
    compiled: &[CompiledQuery],
    stream: &[Transaction],
) -> (Duration, StreamCost) {
    let mut g = graph.clone();
    let t0 = Instant::now();
    for cq in compiled {
        let _ = evaluate_consolidated(&cq.fra, &g);
    }
    let first = t0.elapsed();
    let t0 = Instant::now();
    for tx in stream {
        g.apply(tx).expect("stream applies");
        for cq in compiled {
            let _ = evaluate_consolidated(&cq.fra, &g);
        }
    }
    let total = t0.elapsed();
    (
        first,
        StreamCost {
            total,
            transactions: stream.len(),
        },
    )
}

/// Assert the IVM result equals recompute at the end of a run (sanity
/// guard inside benchmarks — a fast benchmark on a wrong answer is
/// worthless).
pub fn check_agreement(engine: &GraphEngine, queries: &[(&str, &str)]) {
    for (name, _) in queries {
        let id = engine.view_by_name(name).expect("registered");
        let compiled = engine.view_compiled(id).expect("compiled");
        let want = evaluate_consolidated(&compiled.fra, engine.graph());
        assert_eq!(
            engine.view(id).expect("view").results(),
            want,
            "view {name} diverged from recompute"
        );
    }
}

/// Robust summary of repeated measurement rounds (same statistics the
/// enriched criterion shim reports: median + MAD, not just a mean).
#[derive(Clone, Copy, Debug)]
pub struct RoundStats {
    /// Median of the samples.
    pub median: f64,
    /// Median absolute deviation around the median.
    pub mad: f64,
    /// Mean of the samples.
    pub mean: f64,
    /// Number of samples.
    pub samples: usize,
}

/// Summarise a sample set (panics on an empty slice — benchmark rounds
/// are fixed counts).
pub fn round_stats(samples: &[f64]) -> RoundStats {
    assert!(!samples.is_empty(), "no samples");
    let mut xs = samples.to_vec();
    let median = median_of(&mut xs);
    let mut dev: Vec<f64> = samples.iter().map(|s| (s - median).abs()).collect();
    let mad = median_of(&mut dev);
    RoundStats {
        median,
        mad,
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
        samples: samples.len(),
    }
}

fn median_of(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Accumulates per-suite statistics and renders the machine-readable
/// `BENCH.json` document (suite → unit, median, MAD, mean, samples,
/// op/s) used to record the perf trajectory across PRs.
#[derive(Debug, Default)]
pub struct BenchJson {
    mode: String,
    entries: Vec<(String, String, RoundStats, f64)>,
}

impl BenchJson {
    /// New document for the given run mode (`"quick"` / `"full"`).
    pub fn new(mode: impl Into<String>) -> BenchJson {
        BenchJson {
            mode: mode.into(),
            entries: Vec::new(),
        }
    }

    /// Record one suite. `ops_per_s` derives from the median and the
    /// unit's scale, so the caller supplies it.
    pub fn suite(&mut self, name: &str, unit: &str, stats: RoundStats, ops_per_s: f64) {
        self.entries
            .push((name.to_string(), unit.to_string(), stats, ops_per_s));
    }

    /// Render the JSON document.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(out, "  \"suites\": {{");
        for (i, (name, unit, s, ops)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    \"{name}\": {{\"unit\": \"{unit}\", \"median\": {:.2}, \"mad\": {:.2}, \
                 \"mean\": {:.2}, \"samples\": {}, \"ops_per_s\": {:.2}}}{comma}",
                s.median, s.mad, s.mean, s.samples, ops
            );
        }
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Markdown table writer used by the `report` binary.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render as GitHub markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a duration as microseconds with sensible precision.
pub fn us(d: Duration) -> String {
    let v = d.as_micros() as f64;
    if v >= 1000.0 {
        format!("{:.1} ms", v / 1000.0)
    } else {
        format!("{v:.1} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_workloads::railway::{generate_railway, queries, RailwayParams};

    #[test]
    fn harness_runs_and_agrees() {
        let mut rw = generate_railway(RailwayParams::size(2, 1));
        let stream = rw.fault_stream(20);
        let qs = [("PosLength", queries::POS_LENGTH)];
        let (_, ivm, engine) = run_ivm(&rw.graph, &qs, CompileOptions::default(), &stream);
        check_agreement(&engine, &qs);
        let compiled = [compile(queries::POS_LENGTH, CompileOptions::default())];
        let (_, rec) = run_recompute(&rw.graph, &compiled, &stream);
        assert!(ivm.total.as_nanos() > 0 && rec.total.as_nanos() > 0);
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "22".into()]);
        let md = t.render();
        assert!(md.starts_with("| a"));
        assert!(md.contains("| 1"));
    }

    #[test]
    fn round_stats_median_and_mad() {
        let s = round_stats(&[1.0, 9.0, 5.0]);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.mad, 4.0);
        assert_eq!(s.samples, 3);
        let s = round_stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn bench_json_renders_valid_shape() {
        let mut doc = BenchJson::new("quick");
        doc.suite(
            "social_ivm",
            "us_per_tx",
            round_stats(&[10.0, 12.0, 11.0]),
            90_909.0,
        );
        doc.suite("transitive", "us_per_tx", round_stats(&[5.0]), 200_000.0);
        let json = doc.render();
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("\"social_ivm\""));
        assert!(json.contains("\"median\": 11.00"));
        assert!(json.contains("\"ops_per_s\": 200000.00"));
        // Exactly one trailing entry without a comma.
        assert!(json.trim_end().ends_with("}"));
    }
}
