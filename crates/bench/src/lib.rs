#![warn(missing_docs)]
//! Shared measurement harness for the experiment suite (E5–E10).
//!
//! Every experiment compares two maintenance strategies over the same
//! update stream:
//!
//! * **IVM** — a [`pgq_core::GraphEngine`] with registered views applies
//!   each transaction and lets the dataflow propagate deltas;
//! * **recompute** — the paper's implicit baseline: apply the
//!   transaction, then re-evaluate the query from scratch with
//!   [`pgq_eval`].
//!
//! The binary `report` prints the EXPERIMENTS.md tables; the Criterion
//! benches under `benches/` wrap the same routines for statistically
//! robust timings.

use std::time::{Duration, Instant};

use pgq_algebra::pipeline::{compile_query_with, CompileOptions};
use pgq_algebra::CompiledQuery;
use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_parser::parse_query;

/// Compile a query with options (panicking on error — benchmark inputs
/// are fixed).
pub fn compile(query: &str, options: CompileOptions) -> CompiledQuery {
    compile_query_with(&parse_query(query).expect("parses"), options).expect("compiles")
}

/// Outcome of streaming updates through one strategy.
#[derive(Clone, Copy, Debug)]
pub struct StreamCost {
    /// Total wall time for the whole stream.
    pub total: Duration,
    /// Number of transactions.
    pub transactions: usize,
}

impl StreamCost {
    /// Mean latency per transaction in microseconds.
    pub fn us_per_tx(&self) -> f64 {
        self.total.as_micros() as f64 / self.transactions.max(1) as f64
    }
}

/// Apply `stream` to an engine with views registered for `queries`;
/// returns (initial build time, stream cost, final engine).
pub fn run_ivm(
    graph: &PropertyGraph,
    queries: &[(&str, &str)],
    options: CompileOptions,
    stream: &[Transaction],
) -> (Duration, StreamCost, GraphEngine) {
    let mut engine = GraphEngine::from_graph(graph.clone());
    let t0 = Instant::now();
    for (name, q) in queries {
        engine
            .register_view_with(name, q, options)
            .unwrap_or_else(|e| panic!("register {name}: {e}"));
    }
    let build = t0.elapsed();
    let t0 = Instant::now();
    for tx in stream {
        engine.apply(tx).expect("stream applies");
    }
    let total = t0.elapsed();
    (
        build,
        StreamCost {
            total,
            transactions: stream.len(),
        },
        engine,
    )
}

/// Apply `stream`, re-evaluating every query from scratch after each
/// transaction; returns (first evaluation time, stream cost).
pub fn run_recompute(
    graph: &PropertyGraph,
    compiled: &[CompiledQuery],
    stream: &[Transaction],
) -> (Duration, StreamCost) {
    let mut g = graph.clone();
    let t0 = Instant::now();
    for cq in compiled {
        let _ = evaluate_consolidated(&cq.fra, &g);
    }
    let first = t0.elapsed();
    let t0 = Instant::now();
    for tx in stream {
        g.apply(tx).expect("stream applies");
        for cq in compiled {
            let _ = evaluate_consolidated(&cq.fra, &g);
        }
    }
    let total = t0.elapsed();
    (
        first,
        StreamCost {
            total,
            transactions: stream.len(),
        },
    )
}

/// Assert the IVM result equals recompute at the end of a run (sanity
/// guard inside benchmarks — a fast benchmark on a wrong answer is
/// worthless).
pub fn check_agreement(engine: &GraphEngine, queries: &[(&str, &str)]) {
    for (name, _) in queries {
        let id = engine.view_by_name(name).expect("registered");
        let compiled = engine.view_compiled(id).expect("compiled");
        let want = evaluate_consolidated(&compiled.fra, engine.graph());
        assert_eq!(
            engine.view(id).expect("view").results(),
            want,
            "view {name} diverged from recompute"
        );
    }
}

/// Markdown table writer used by the `report` binary.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render as GitHub markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a duration as microseconds with sensible precision.
pub fn us(d: Duration) -> String {
    let v = d.as_micros() as f64;
    if v >= 1000.0 {
        format!("{:.1} ms", v / 1000.0)
    } else {
        format!("{v:.1} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgq_workloads::railway::{generate_railway, queries, RailwayParams};

    #[test]
    fn harness_runs_and_agrees() {
        let mut rw = generate_railway(RailwayParams::size(2, 1));
        let stream = rw.fault_stream(20);
        let qs = [("PosLength", queries::POS_LENGTH)];
        let (_, ivm, engine) = run_ivm(&rw.graph, &qs, CompileOptions::default(), &stream);
        check_agreement(&engine, &qs);
        let compiled = [compile(queries::POS_LENGTH, CompileOptions::default())];
        let (_, rec) = run_recompute(&rw.graph, &compiled, &stream);
        assert!(ivm.total.as_nanos() > 0 && rec.total.as_nanos() > 0);
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "22".into()]);
        let md = t.render();
        assert!(md.starts_with("| a"));
        assert!(md.contains("| 1"));
    }
}
