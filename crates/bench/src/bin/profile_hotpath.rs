//! Decomposes per-transaction IVM cost for the two certified suites:
//! graph mutation vs. shared-network propagation (which now folds
//! event routing, operator deltas, consolidation and result-map upkeep
//! into one topological pass). A developer tool for directing perf
//! work — not an experiment table.
//!
//! Run with `cargo run --release -p pgq_bench --bin profile_hotpath`.

use std::time::{Duration, Instant};

use pgq_algebra::pipeline::CompileOptions;
use pgq_bench::compile;
use pgq_ivm::MaterializedView;
use pgq_workloads::social::{generate_social, queries as sq, SocialParams};
use pgq_workloads::trees::reply_tree;
use pgq_workloads::EXAMPLE_QUERY;

fn main() {
    social();
    social_fine();
    transitive();
}

/// Decompose the SAME_LANG_THREAD network stage by stage: the scan+⋈*
/// subtree (maintained as its own network) vs. the full plan, isolating
/// what the projection/filter layers above the traversal cost.
fn social_fine() {
    use pgq_algebra::Fra;
    let mut net = generate_social(SocialParams::scale(0.5, 42));
    let stream = net.update_stream(50, (4, 2, 3, 1));
    let compiled = compile(sq::SAME_LANG_THREAD, CompileOptions::default());

    // Expect Project → Filter → Project → VarLengthJoin.
    let Fra::Project { input, .. } = &compiled.fra else {
        println!("unexpected plan shape (no outer Project)");
        return;
    };
    let Fra::Filter { input: mid, .. } = input.as_ref() else {
        println!("unexpected plan shape (no Filter)");
        return;
    };
    let Fra::Project { input: vl, .. } = mid.as_ref() else {
        println!("unexpected plan shape (no mid Project)");
        return;
    };

    let rounds = 20;
    let mut t_vl = Duration::ZERO;
    let mut t_full = Duration::ZERO;
    for _ in 0..rounds {
        let mut g = net.graph.clone();
        let mut sub = MaterializedView::create_unchecked("sub", vl, &g);
        let mut full = MaterializedView::create_unchecked("full", &compiled.fra, &g);
        for tx in &stream {
            let events = g.apply(tx).unwrap();
            let t0 = Instant::now();
            let _ = sub.on_transaction(&g, &events);
            let t1 = Instant::now();
            let _ = full.on_transaction(&g, &events);
            let t2 = Instant::now();
            t_vl += t1 - t0;
            t_full += t2 - t1;
        }
    }
    let per_tx = |d: Duration| d.as_nanos() as f64 / (rounds * stream.len()) as f64 / 1000.0;
    println!("social_ivm fine (us/tx):");
    println!("  scan+⋈* subtree   {:8.2}", per_tx(t_vl));
    println!("  full plan         {:8.2}", per_tx(t_full));
    println!("  π/σ/π overhead    {:8.2}", per_tx(t_full) - per_tx(t_vl));
}

fn social() {
    let mut net = generate_social(SocialParams::scale(0.5, 42));
    let stream = net.update_stream(50, (4, 2, 3, 1));
    let compiled = compile(sq::SAME_LANG_THREAD, CompileOptions::default());

    let rounds = 20;
    let mut t_graph = Duration::ZERO;
    let mut t_network = Duration::ZERO;
    for _ in 0..rounds {
        let mut g = net.graph.clone();
        let mut view = MaterializedView::create_unchecked("v", &compiled.fra, &g);
        for tx in &stream {
            let t0 = Instant::now();
            let events = g.apply(tx).unwrap();
            let t1 = Instant::now();
            let _ = view.on_transaction(&g, &events);
            let t2 = Instant::now();
            t_graph += t1 - t0;
            t_network += t2 - t1;
        }
    }
    let per_tx = |d: Duration| d.as_nanos() as f64 / (rounds * stream.len()) as f64 / 1000.0;
    println!("social_ivm (us/tx):");
    println!("  graph.apply       {:8.2}", per_tx(t_graph));
    println!("  network pass      {:8.2}", per_tx(t_network));
}

fn transitive() {
    let tree = reply_tree(6, 2);
    let root_edge = tree.edges[0];
    let data = tree.graph.edge(root_edge).unwrap().clone();
    let compiled = compile(EXAMPLE_QUERY, CompileOptions::default());

    let rounds = 40;
    let mut t_graph = Duration::ZERO;
    let mut t_network = Duration::ZERO;
    for _ in 0..rounds {
        let mut g = tree.graph.clone();
        let mut view = MaterializedView::create_unchecked("v", &compiled.fra, &g);
        for step in 0..2 {
            let mut tx = pgq_graph::tx::Transaction::new();
            if step == 0 {
                tx.delete_edge(root_edge);
            } else {
                tx.create_edge(data.src, data.dst, data.ty, data.props.clone());
            }
            let t0 = Instant::now();
            let events = g.apply(&tx).unwrap();
            let t1 = Instant::now();
            let _ = view.on_transaction(&g, &events);
            let t2 = Instant::now();
            t_graph += t1 - t0;
            t_network += t2 - t1;
        }
    }
    let per_tx = |d: Duration| d.as_nanos() as f64 / (rounds * 2) as f64 / 1000.0;
    println!("transitive root churn (us/tx):");
    println!("  graph.apply       {:8.2}", per_tx(t_graph));
    println!("  network pass      {:8.2}", per_tx(t_network));
}
