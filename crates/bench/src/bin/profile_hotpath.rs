//! Decomposes per-transaction IVM cost for the two certified suites:
//! graph mutation vs. dataflow propagation vs. delta consolidation vs.
//! result-map upkeep. A developer tool for directing perf work — not an
//! experiment table.
//!
//! Run with `cargo run --release -p pgq_bench --bin profile_hotpath`.

use std::time::{Duration, Instant};

use pgq_algebra::pipeline::CompileOptions;
use pgq_bench::compile;
use pgq_common::fxhash::FxHashMap;
use pgq_common::tuple::Tuple;
use pgq_ivm::Op;
use pgq_workloads::social::{generate_social, queries as sq, SocialParams};
use pgq_workloads::trees::reply_tree;
use pgq_workloads::EXAMPLE_QUERY;

fn main() {
    social();
    social_fine();
    transitive();
}

/// Decompose the SAME_LANG_THREAD network stage by stage: vertex scan,
/// the ⋈* sub-network, filter, project.
fn social_fine() {
    use pgq_algebra::Fra;
    let mut net = generate_social(SocialParams::scale(0.5, 42));
    let stream = net.update_stream(50, (4, 2, 3, 1));
    let compiled = compile(sq::SAME_LANG_THREAD, CompileOptions::default());

    // Expect Project → Filter → Project → VarLengthJoin.
    let Fra::Project { input, items } = &compiled.fra else {
        println!("unexpected plan shape (no outer Project)");
        return;
    };
    let Fra::Filter {
        input: mid,
        predicate,
    } = input.as_ref()
    else {
        println!("unexpected plan shape (no Filter)");
        return;
    };
    let Fra::Project {
        input: vl,
        items: mid_items,
    } = mid.as_ref()
    else {
        println!("unexpected plan shape (no mid Project)");
        return;
    };

    let rounds = 20;
    let mut t_vl = Duration::ZERO;
    let mut t_mid = Duration::ZERO;
    let mut t_filter = Duration::ZERO;
    let mut t_project = Duration::ZERO;
    for _ in 0..rounds {
        let mut g = net.graph.clone();
        let mut vl_op = pgq_ivm::Op::build(vl);
        vl_op.initial(&g);
        for tx in &stream {
            let events = g.apply(tx).unwrap();
            let t0 = Instant::now();
            let d = vl_op.on_events(&g, &events);
            let t1 = Instant::now();
            let d = pgq_ivm::basic::project_delta(mid_items, d);
            let t2 = Instant::now();
            let d = pgq_ivm::basic::filter_delta(predicate, d);
            let t3 = Instant::now();
            let _ = pgq_ivm::basic::project_delta(items, d);
            let t4 = Instant::now();
            t_vl += t1 - t0;
            t_mid += t2 - t1;
            t_filter += t3 - t2;
            t_project += t4 - t3;
        }
    }
    let per_tx = |d: Duration| d.as_nanos() as f64 / (rounds * stream.len()) as f64 / 1000.0;
    println!("social_ivm fine (us/tx):");
    println!("  scan+⋈* subtree  {:8.2}", per_tx(t_vl));
    println!("  mid project      {:8.2}", per_tx(t_mid));
    println!("  filter           {:8.2}", per_tx(t_filter));
    println!("  outer project    {:8.2}", per_tx(t_project));
}

fn social() {
    let mut net = generate_social(SocialParams::scale(0.5, 42));
    let stream = net.update_stream(50, (4, 2, 3, 1));
    let compiled = compile(sq::SAME_LANG_THREAD, CompileOptions::default());

    let rounds = 20;
    let mut t_graph = Duration::ZERO;
    let mut t_ops = Duration::ZERO;
    let mut t_consolidate = Duration::ZERO;
    let mut t_results = Duration::ZERO;
    for _ in 0..rounds {
        let mut g = net.graph.clone();
        let mut root = Op::build(&compiled.fra);
        let init = root.initial(&g).consolidate();
        let mut results: FxHashMap<Tuple, i64> = FxHashMap::default();
        for (t, m) in init.into_entries() {
            *results.entry(t).or_insert(0) += m;
        }
        for tx in &stream {
            let t0 = Instant::now();
            let events = g.apply(tx).unwrap();
            let t1 = Instant::now();
            let delta = root.on_events(&g, &events);
            let t2 = Instant::now();
            let delta = delta.consolidate();
            let t3 = Instant::now();
            for (t, m) in delta.iter() {
                use std::collections::hash_map::Entry;
                match results.entry(t.clone()) {
                    Entry::Occupied(mut e) => {
                        *e.get_mut() += m;
                        if *e.get() == 0 {
                            e.remove();
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert(*m);
                    }
                }
            }
            let t4 = Instant::now();
            t_graph += t1 - t0;
            t_ops += t2 - t1;
            t_consolidate += t3 - t2;
            t_results += t4 - t3;
        }
    }
    let per_tx = |d: Duration| d.as_nanos() as f64 / (rounds * stream.len()) as f64 / 1000.0;
    println!("social_ivm (us/tx):");
    println!("  graph.apply      {:8.2}", per_tx(t_graph));
    println!("  op.on_events     {:8.2}", per_tx(t_ops));
    println!("  consolidate      {:8.2}", per_tx(t_consolidate));
    println!("  results upkeep   {:8.2}", per_tx(t_results));
}

fn transitive() {
    let tree = reply_tree(6, 2);
    let root_edge = tree.edges[0];
    let data = tree.graph.edge(root_edge).unwrap().clone();
    let compiled = compile(EXAMPLE_QUERY, CompileOptions::default());

    let rounds = 40;
    let mut t_graph = Duration::ZERO;
    let mut t_ops = Duration::ZERO;
    let mut t_consolidate = Duration::ZERO;
    for _ in 0..rounds {
        let mut g = tree.graph.clone();
        let mut op_root = Op::build(&compiled.fra);
        op_root.initial(&g).consolidate();
        for step in 0..2 {
            let mut tx = pgq_graph::tx::Transaction::new();
            if step == 0 {
                tx.delete_edge(root_edge);
            } else {
                tx.create_edge(data.src, data.dst, data.ty, data.props.clone());
            }
            let t0 = Instant::now();
            let events = g.apply(&tx).unwrap();
            let t1 = Instant::now();
            let delta = op_root.on_events(&g, &events);
            let t2 = Instant::now();
            let _ = delta.consolidate();
            let t3 = Instant::now();
            t_graph += t1 - t0;
            t_ops += t2 - t1;
            t_consolidate += t3 - t2;
        }
    }
    let per_tx = |d: Duration| d.as_nanos() as f64 / (rounds * 2) as f64 / 1000.0;
    println!("transitive root churn (us/tx):");
    println!("  graph.apply      {:8.2}", per_tx(t_graph));
    println!("  op.on_events     {:8.2}", per_tx(t_ops));
    println!("  consolidate      {:8.2}", per_tx(t_consolidate));
}
