//! Regenerates every experiment table (E5–E10) and prints them as
//! markdown — the source of the numbers recorded in EXPERIMENTS.md.
//!
//! Run with `cargo run --release -p pgq_bench --bin report`.
//! Pass `--quick` (or set `PGQ_BENCH_QUICK=1`) for a fast smoke run with
//! smaller sizes. Pass `--bench-json <path>` to skip the tables and
//! instead write the machine-readable `BENCH.json` perf-trajectory
//! document (suite → median, MAD, op/s over repeated rounds) for the
//! certified suites (`social_ivm`, `transitive`, `many_views`,
//! `concurrent_views`, `batch_churn`, `planner`).

use pgq_algebra::pipeline::CompileOptions;
use pgq_algebra::SchemaMode;
use pgq_bench::{
    check_agreement, compile, round_stats, run_ivm, run_recompute, us, BenchJson, Table,
};
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_core::GraphEngine;
use pgq_graph::tx::Transaction;
use pgq_workloads::hub::{generate_hub, queries as hq, HubParams};
use pgq_workloads::motifs::{
    generate_hub_motifs, generate_motifs, queries as mq, HubMotifParams, MotifParams,
};
use pgq_workloads::railway::{generate_railway, queries as rq, RailwayParams};
use pgq_workloads::social::{generate_social, queries as sq, SocialParams};
use pgq_workloads::trees::{expected_root_paths, reply_tree};
use pgq_workloads::EXAMPLE_QUERY;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Same PGQ_BENCH_QUICK spelling rules as the criterion shim.
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("PGQ_BENCH_QUICK")
            .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"));
    if let Some(ix) = args.iter().position(|a| a == "--bench-json") {
        let path = args
            .get(ix + 1)
            .expect("--bench-json needs a target path")
            .clone();
        emit_bench_json(quick, &path);
        return;
    }
    println!("# pgq experiment report\n");
    println!(
        "mode: {} (debug assertions {})\n",
        if quick { "quick" } else { "full" },
        if cfg!(debug_assertions) {
            "ON — use --release!"
        } else {
            "off"
        }
    );
    e5_train_benchmark(quick);
    e6_social(quick);
    e7_transitive(quick);
    e8_fgn(quick);
    e9_memory(quick);
    e10_ablation(quick);
    e11_optimizer(quick);
    e12_planner(quick);
    e13_wcoj(quick);
}

/// Measure the certified perf suites over repeated rounds and write
/// `BENCH.json`. Mirrors the criterion benches (`social_ivm`,
/// `transitive`, `many_views`, `concurrent_views`, `planner`) so shim
/// output and this document agree on what is being measured.
fn emit_bench_json(quick: bool, path: &str) {
    let rounds = if quick { 5 } else { 21 };
    let mut doc = BenchJson::new(if quick { "quick" } else { "full" });

    // social_ivm: the paper's thread query maintained under a social
    // update stream (scale factor 0.5, 50 transactions).
    {
        let sf = if quick { 0.1 } else { 0.5 };
        let mut net = generate_social(SocialParams::scale(sf, 42));
        let stream = net.update_stream(50, (4, 2, 3, 1));
        let mut engine = GraphEngine::from_graph(net.graph.clone());
        engine
            .register_view("threads", sq::SAME_LANG_THREAD)
            .unwrap();
        let mut ivm_us = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let mut e = engine.clone();
            let t0 = std::time::Instant::now();
            for tx in &stream {
                e.apply(tx).unwrap();
            }
            ivm_us.push(t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0);
        }
        let stats = round_stats(&ivm_us);
        doc.suite("social_ivm", "us_per_tx", stats, 1e6 / stats.median);

        let compiled = compile(sq::SAME_LANG_THREAD, CompileOptions::default());
        let mut rec_us = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let (_, rec) = run_recompute(&net.graph, std::slice::from_ref(&compiled), &stream);
            rec_us.push(rec.us_per_tx());
        }
        let stats = round_stats(&rec_us);
        doc.suite("social_recompute", "us_per_tx", stats, 1e6 / stats.median);
    }

    // transitive: reply-tree churn at the leaf and at the root.
    {
        let (depth, fanout) = if quick { (4, 2) } else { (6, 2) };
        let tree = reply_tree(depth, fanout);
        let leaf_edge = *tree.edges.last().unwrap();
        let root_edge = tree.edges[0];
        // A churn pair = delete the edge + recreate it (the recreated
        // edge gets a fresh id, so track it between pairs). Each round
        // warms a cloned engine with 2 pairs, then times `pairs` of
        // them at nanosecond resolution — a single µs-truncated pair
        // cannot resolve sub-µs differences on these small trees.
        let pairs = if quick { 10 } else { 40 };
        for (which, edge) in [("leaf", leaf_edge), ("root", root_edge)] {
            let data = tree.graph.edge(edge).unwrap().clone();
            let mut engine = GraphEngine::from_graph(tree.graph.clone());
            engine.register_view("t", EXAMPLE_QUERY).unwrap();
            let mut churn_us = Vec::with_capacity(rounds);
            for _ in 0..rounds {
                let mut e = engine.clone();
                let mut cur = edge;
                let churn = |e: &mut GraphEngine, cur: &mut pgq_common::ids::EdgeId| {
                    let mut tx = Transaction::new();
                    tx.delete_edge(*cur);
                    e.apply(&tx).unwrap();
                    let mut tx = Transaction::new();
                    tx.create_edge(data.src, data.dst, data.ty, data.props.clone());
                    let events = e.apply(&tx).unwrap();
                    // The recreated edge's fresh id, straight from the
                    // change feed (an O(|E|) id sweep here would charge
                    // graph iteration to the IVM measurement).
                    *cur = events
                        .iter()
                        .find_map(pgq_graph::delta::ChangeEvent::touched_edge)
                        .expect("create emits an edge event");
                };
                for _ in 0..2 {
                    churn(&mut e, &mut cur);
                }
                let t0 = std::time::Instant::now();
                for _ in 0..pairs {
                    churn(&mut e, &mut cur);
                }
                churn_us.push(t0.elapsed().as_nanos() as f64 / (pairs * 2) as f64 / 1000.0);
            }
            let stats = round_stats(&churn_us);
            let name = format!("transitive_ivm_{which}");
            doc.suite(&name, "us_per_tx", stats, 1e6 / stats.median);
        }
        let compiled = compile(EXAMPLE_QUERY, CompileOptions::default());
        let mut rec_us = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t0 = std::time::Instant::now();
            let _ = pgq_eval::evaluate_consolidated(&compiled.fra, &tree.graph);
            rec_us.push(t0.elapsed().as_micros() as f64);
        }
        let stats = round_stats(&rec_us);
        doc.suite(
            "transitive_recompute",
            "us_per_eval",
            stats,
            1e6 / stats.median,
        );
    }

    // many_views: N overlapping standing queries on one shared network
    // (the node-sharing payoff: per-transaction cost must grow
    // sublinearly in N). Alternate the N variants inside each round so
    // machine-speed drift hits them equally.
    {
        let sf = 0.1;
        let mut net = generate_social(SocialParams::scale(sf, 42));
        let stream = net.update_stream(50, (4, 2, 3, 1));
        let ns: &[usize] = &[1, 4, 16];
        let engines: Vec<_> = ns
            .iter()
            .map(|&n| {
                let mut engine = GraphEngine::from_graph(net.graph.clone());
                for (i, q) in pgq_workloads::social::OVERLAPPING_QUERIES
                    .iter()
                    .take(n)
                    .enumerate()
                {
                    engine.register_view(&format!("v{i}"), q).unwrap();
                }
                engine
            })
            .collect();
        let mut us: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); ns.len()];
        for _ in 0..rounds {
            for (ix, engine) in engines.iter().enumerate() {
                let mut e = engine.clone();
                let t0 = std::time::Instant::now();
                for tx in &stream {
                    e.apply(tx).unwrap();
                }
                us[ix].push(t0.elapsed().as_micros() as f64 / stream.len() as f64);
            }
        }
        for (ix, &n) in ns.iter().enumerate() {
            let stats = round_stats(&us[ix]);
            doc.suite(
                &format!("many_views_{n}"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
        }
    }

    // many_views sharing certification: the alpha-renamed family and the
    // WHERE-only-differing family at N=16, shared network vs the
    // unshared baseline (one private single-view network per query — the
    // pre-sharing architecture). Shared and private variants alternate
    // inside each round so machine-speed drift hits them equally.
    {
        use pgq_ivm::MaterializedView;
        use pgq_workloads::social::{renamed_overlap_query, WHERE_FAMILY_QUERIES};

        let n = 16;
        let mut net = generate_social(SocialParams::scale(0.1, 42));
        let stream = net.update_stream(50, (4, 2, 3, 1));
        let renamed: Vec<String> = (0..n).map(renamed_overlap_query).collect();
        let family: Vec<String> = WHERE_FAMILY_QUERIES
            .iter()
            .take(n)
            .map(|q| q.to_string())
            .collect();

        let variants: Vec<(String, GraphEngine, Vec<MaterializedView>)> = vec![
            (
                "renamed".into(),
                pgq_bench::shared_engine(&net.graph, &renamed, n),
                pgq_bench::private_views(&net.graph, &renamed, n),
            ),
            (
                "where".into(),
                pgq_bench::shared_engine(&net.graph, &family, n),
                pgq_bench::private_views(&net.graph, &family, n),
            ),
        ];
        let mut shared_us: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); variants.len()];
        let mut private_us: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); variants.len()];
        for _ in 0..rounds {
            for (ix, (_, engine, views)) in variants.iter().enumerate() {
                let mut e = engine.clone();
                let t0 = std::time::Instant::now();
                for tx in &stream {
                    e.apply(tx).unwrap();
                }
                shared_us[ix].push(t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0);

                let mut g = net.graph.clone();
                let mut vs = views.clone();
                let t0 = std::time::Instant::now();
                for tx in &stream {
                    let events = g.apply(tx).unwrap();
                    for v in &mut vs {
                        v.on_transaction(&g, &events);
                    }
                }
                private_us[ix].push(t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0);
            }
        }
        for (ix, (name, _, _)) in variants.iter().enumerate() {
            let stats = round_stats(&shared_us[ix]);
            doc.suite(
                &format!("many_views_{name}_{n}"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
            let stats = round_stats(&private_us[ix]);
            doc.suite(
                &format!("many_views_{name}_private_{n}"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
        }
    }

    // concurrent_views_t{w}: language churn across independent branch
    // views at propagation widths 1/2/4/8 (PGQ_THREADS equivalent).
    // Every transaction flips every branch root's `lang`, so each pass
    // dirties all branch regions at once — the widest frontier the
    // worker pool can exploit. Widths alternate inside each round so
    // machine-speed drift hits them equally. NOTE: speedup over t1 is
    // only possible when the host grants >1 core; on a single-core host
    // the t>1 suites measure pure scheduling overhead (the honest
    // number). `host_cores` below records what this run actually had.
    {
        let widths: &[usize] = &[1, 2, 4, 8];
        let (depth, pairs) = if quick { (4, 20) } else { (6, 40) };
        let forest = pgq_workloads::branch_forest(8, depth, 2);
        let mut template = GraphEngine::from_graph(forest.graph.clone());
        for i in 0..forest.branches.len() {
            template
                .register_view(&format!("b{i}"), &pgq_workloads::branch_query(i))
                .unwrap();
        }
        let retract = pgq_workloads::churn_all(&forest, "de");
        let assert_tx = pgq_workloads::churn_all(&forest, "en");
        let engines: Vec<_> = widths
            .iter()
            .map(|&w| {
                let mut e = template.clone();
                e.set_threads(w);
                // Build the worker pool now so the per-round clones
                // share it (via `Arc`) instead of spawning threads
                // inside the timing.
                e.apply(&retract).unwrap();
                e.apply(&assert_tx).unwrap();
                e
            })
            .collect();
        // Width-1 is the oracle: every width must produce identical
        // consolidated view contents (cheap gate outside the timing).
        {
            let rows = |e: &GraphEngine| -> Vec<_> {
                (0..forest.branches.len())
                    .map(|i| {
                        let id = e.view_by_name(&format!("b{i}")).unwrap();
                        e.view(id).unwrap().results()
                    })
                    .collect()
            };
            let mut oracle = engines[0].clone();
            oracle.apply(&retract).unwrap();
            oracle.apply(&assert_tx).unwrap();
            let want = rows(&oracle);
            for (&w, engine) in widths.iter().zip(&engines).skip(1) {
                let mut e = engine.clone();
                e.apply(&retract).unwrap();
                e.apply(&assert_tx).unwrap();
                assert_eq!(rows(&e), want, "width {w} diverged from serial");
            }
        }
        let mut us: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); widths.len()];
        for _ in 0..rounds {
            for (ix, engine) in engines.iter().enumerate() {
                let mut e = engine.clone();
                let t0 = std::time::Instant::now();
                for _ in 0..pairs {
                    e.apply(&retract).unwrap();
                    e.apply(&assert_tx).unwrap();
                }
                us[ix].push(t0.elapsed().as_nanos() as f64 / (pairs * 2) as f64 / 1000.0);
            }
        }
        for (ix, &w) in widths.iter().enumerate() {
            let stats = round_stats(&us[ix]);
            doc.suite(
                &format!("concurrent_views_t{w}"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
        }
        // Record the host's usable parallelism alongside the width
        // suites — without it the t>1 numbers cannot be interpreted.
        let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
        doc.suite(
            "host_cores",
            "cores",
            round_stats(&[cores as f64]),
            cores as f64,
        );

        // batch_churn_*: the same forest driven by single-branch
        // transactions round-robin (sweep 0 flips every branch to "de"
        // one tx at a time, sweep 1 back to "en", …). Within a sweep
        // every footprint is disjoint, so `apply_batch` coalesces each
        // sweep into one propagation pass; the sequential baseline pays
        // one pass per transaction. Batched/sequential alternate inside
        // each round.
        {
            let sweeps = 6;
            let nb = forest.branches.len();
            let stream: Vec<Transaction> = (0..sweeps)
                .flat_map(|k| {
                    let lang = if k % 2 == 0 { "de" } else { "en" };
                    let forest = &forest;
                    (0..nb).map(move |b| pgq_workloads::churn_one(forest, b, lang))
                })
                .collect();
            // Agreement gate: batched and sequential end in the same
            // view state, and batching really does fold each sweep
            // into one pass.
            {
                let mut batched = engines[0].clone();
                let summary = batched.apply_batch(&stream).unwrap();
                assert_eq!(summary.transactions, stream.len());
                assert_eq!(summary.passes, sweeps, "one pass per sweep");
                let mut seq = engines[0].clone();
                for tx in &stream {
                    seq.apply(tx).unwrap();
                }
                let rows = |e: &GraphEngine| -> Vec<_> {
                    (0..nb)
                        .map(|i| {
                            let id = e.view_by_name(&format!("b{i}")).unwrap();
                            e.view(id).unwrap().results()
                        })
                        .collect()
                };
                assert_eq!(rows(&batched), rows(&seq), "batched diverged");
            }
            let mut batched_us = Vec::with_capacity(rounds);
            let mut seq_us = Vec::with_capacity(rounds);
            for _ in 0..rounds {
                let mut e = engines[0].clone();
                let t0 = std::time::Instant::now();
                e.apply_batch(&stream).unwrap();
                batched_us.push(t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0);

                let mut e = engines[0].clone();
                let t0 = std::time::Instant::now();
                for tx in &stream {
                    e.apply(tx).unwrap();
                }
                seq_us.push(t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0);
            }
            let stats = round_stats(&batched_us);
            doc.suite(
                "batch_churn_batched",
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
            let stats = round_stats(&seq_us);
            doc.suite(
                "batch_churn_sequential",
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
        }
    }

    // planner_*: the skewed hub fan-out workload, cost-based join order
    // vs the same query registered with the planner disabled (the
    // syntactic order) — same binary, planned/syntactic alternating
    // inside each round so machine-speed drift hits them equally.
    {
        let params = if quick {
            HubParams::quick()
        } else {
            HubParams::default()
        };
        let mut net = generate_hub(params);
        let stream = net.update_stream(50);
        for (name, q) in [("hub", hq::RARE_TOPIC_FANS), ("filter", hq::RARE_CAT_FANS)] {
            let mut planned = GraphEngine::from_graph(net.graph.clone());
            planned.register_view("v", q).unwrap();
            let mut syntactic = GraphEngine::from_graph(net.graph.clone());
            syntactic.register_view_unplanned("v", q).unwrap();

            let mut planned_us = Vec::with_capacity(rounds);
            let mut syntactic_us = Vec::with_capacity(rounds);
            for _ in 0..rounds {
                for (engine, out) in [(&planned, &mut planned_us), (&syntactic, &mut syntactic_us)]
                {
                    let mut e = engine.clone();
                    let t0 = std::time::Instant::now();
                    for tx in &stream {
                        e.apply(tx).unwrap();
                    }
                    out.push(t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0);
                }
            }
            // Both orders must agree (cheap oracle outside the timing).
            {
                let (mut p, mut s) = (planned.clone(), syntactic.clone());
                for tx in &stream {
                    p.apply(tx).unwrap();
                    s.apply(tx).unwrap();
                }
                let rows = |e: &GraphEngine| {
                    let id = e.view_by_name("v").unwrap();
                    e.view(id).unwrap().results()
                };
                assert_eq!(rows(&p), rows(&s), "planned and syntactic orders diverged");
            }
            let stats = round_stats(&planned_us);
            doc.suite(
                &format!("planner_{name}_ivm"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
            let stats = round_stats(&syntactic_us);
            doc.suite(
                &format!("planner_{name}_syntactic"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
        }
    }

    // triangles_* / motif_*: cyclic-motif maintenance on the skewed
    // motif workload, the fused ⨝ⁿ worst-case optimal plan vs the
    // binary join tree (`register_view_binary`), at two edge scales.
    // The optimality claim is asymptotic — the wcoj/binary ratio must
    // grow between `s` and `m` — so both sizes are certified. Fused and
    // binary engines alternate inside each round so machine-speed drift
    // hits them equally.
    {
        let sizes: &[(&str, usize, usize)] = if quick {
            &[("s", 60, 150), ("m", 120, 400)]
        } else {
            &[("s", 300, 900), ("m", 1200, 6000)]
        };
        for &(tag, nodes, edges) in sizes {
            let mut net = generate_motifs(MotifParams {
                nodes,
                edges,
                ..MotifParams::default()
            });
            let stream = net.churn(50, 0.3);
            for (base, q) in [
                ("triangles", mq::TRIANGLES),
                ("motif_4cycle", mq::FOUR_CYCLES),
            ] {
                let mut wcoj = GraphEngine::from_graph(net.graph.clone());
                wcoj.register_view("v", q).unwrap();
                let mut binary = GraphEngine::from_graph(net.graph.clone());
                binary.register_view_binary("v", q).unwrap();
                // Both plans must agree after the whole stream (cheap
                // oracle outside the timing) — a fast number on a wrong
                // answer cannot be recorded.
                {
                    let (mut w, mut b) = (wcoj.clone(), binary.clone());
                    for tx in &stream {
                        w.apply(tx).unwrap();
                        b.apply(tx).unwrap();
                    }
                    let rows = |e: &GraphEngine| {
                        let id = e.view_by_name("v").unwrap();
                        e.view(id).unwrap().results()
                    };
                    assert_eq!(
                        rows(&w),
                        rows(&b),
                        "wcoj and binary plans diverged on {base}_{tag}"
                    );
                }
                let mut wcoj_us = Vec::with_capacity(rounds);
                let mut binary_us = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    for (engine, out) in [(&wcoj, &mut wcoj_us), (&binary, &mut binary_us)] {
                        let mut e = engine.clone();
                        let t0 = std::time::Instant::now();
                        for tx in &stream {
                            e.apply(tx).unwrap();
                        }
                        out.push(t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0);
                    }
                }
                let stats = round_stats(&wcoj_us);
                doc.suite(
                    &format!("{base}_wcoj_{tag}"),
                    "us_per_tx",
                    stats,
                    1e6 / stats.median,
                );
                let stats = round_stats(&binary_us);
                doc.suite(
                    &format!("{base}_binary_{tag}"),
                    "us_per_tx",
                    stats,
                    1e6 / stats.median,
                );
            }
        }
    }

    // triangles_hub_*: the galloping target case — triangle maintenance
    // whose bridge-edge deltas intersect two hub-degree candidate lists
    // with a tiny, id-segregated overlap. Sorted-run backend vs the
    // hash-trie fallback, fusion forced on both engines so they run the
    // identical ⨝ⁿ plan and differ only in the intersection machinery.
    // The certified claim (sorted ≥ 1.5× hash at hub degree ≥ 10k)
    // lives on the `m` size.
    {
        let sizes: &[(&str, usize, usize)] = if quick {
            &[("s", 400, 8)]
        } else {
            &[("s", 2_000, 20), ("m", 10_000, 100)]
        };
        for &(tag, spokes, closers) in sizes {
            let mut net = generate_hub_motifs(HubMotifParams {
                spokes,
                closers,
                seed: 11,
            });
            let stream = net.churn(if quick { 30 } else { 50 });
            let mut sorted_e = GraphEngine::from_graph(net.graph.clone());
            sorted_e
                .register_view_wcoj_forced("v", mq::TRIANGLES, true)
                .unwrap();
            let mut hash_e = GraphEngine::from_graph(net.graph.clone());
            hash_e
                .register_view_wcoj_forced("v", mq::TRIANGLES, false)
                .unwrap();
            // Both backends must agree after the whole stream (cheap
            // oracle outside the timing).
            {
                let (mut a, mut b) = (sorted_e.clone(), hash_e.clone());
                for tx in &stream {
                    a.apply(tx).unwrap();
                    b.apply(tx).unwrap();
                }
                let rows = |e: &GraphEngine| {
                    let id = e.view_by_name("v").unwrap();
                    e.view(id).unwrap().results()
                };
                assert_eq!(
                    rows(&a),
                    rows(&b),
                    "sorted and hash backends diverged on triangles_hub_{tag}"
                );
            }
            let mut sorted_us = Vec::with_capacity(rounds);
            let mut hash_us = Vec::with_capacity(rounds);
            for _ in 0..rounds {
                for (engine, out) in [(&sorted_e, &mut sorted_us), (&hash_e, &mut hash_us)] {
                    let mut e = engine.clone();
                    let t0 = std::time::Instant::now();
                    for tx in &stream {
                        e.apply(tx).unwrap();
                    }
                    out.push(t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0);
                }
            }
            let stats = round_stats(&sorted_us);
            doc.suite(
                &format!("triangles_hub_sorted_{tag}"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
            let stats = round_stats(&hash_us);
            doc.suite(
                &format!("triangles_hub_hash_{tag}"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
        }
    }

    // recovery_*: warm restart from a durability snapshot (graph +
    // operator state, WAL tail empty) vs the cold baseline — rebuild
    // from the same graph by re-registering every view from scratch.
    // The durable image lives on an in-memory Vfs so the suite measures
    // the restore machinery, not host disk. Alternate warm/cold inside
    // each round so drift hits both sides equally.
    {
        use pgq_durability::{MemDisk, Vfs};
        use std::sync::Arc;

        let sizes: &[(&str, f64)] = if quick {
            &[("s", 0.1)]
        } else {
            &[("s", 0.2), ("m", 0.5)]
        };
        // Join-heavy standing views: warm restore pays on stateful
        // operators whose initialisation probes and emits (joins);
        // variable-length paths recompute either way, so the suite
        // excludes them to measure the restore machinery, not the
        // shared recompute floor.
        let named: Vec<(String, &str)> = std::iter::once(("likes".to_string(), sq::FRIEND_LIKES))
            .chain(
                pgq_workloads::social::OVERLAPPING_QUERIES
                    .iter()
                    .enumerate()
                    .map(|(i, q)| (format!("ov{i}"), *q)),
            )
            .collect();
        let views: Vec<(&str, &str)> = named.iter().map(|(n, q)| (n.as_str(), *q)).collect();
        let views: &[(&str, &str)] = &views;
        for &(tag, sf) in sizes {
            let net = generate_social(SocialParams::scale(sf, 42));
            // Bulk-load the generated graph into a durable engine via
            // one transaction (snapshot ids stay dense, which is all
            // the loader needs), register the standing views, and cut
            // the snapshot the warm side will recover from.
            let disk = MemDisk::new();
            {
                let mut engine = GraphEngine::open_durable_with(Arc::new(disk.vfs()))
                    .expect("open empty durable engine");
                let mut tx = Transaction::new();
                let mut ids: Vec<_> = net.graph.vertex_ids().collect();
                ids.sort_unstable();
                let slot: std::collections::HashMap<_, _> =
                    ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
                for id in &ids {
                    let v = net.graph.vertex(*id).unwrap();
                    tx.create_vertex(v.labels.iter().copied(), v.props.clone());
                }
                let mut eids: Vec<_> = net.graph.edge_ids().collect();
                eids.sort_unstable();
                for id in eids {
                    let e = net.graph.edge(id).unwrap();
                    tx.create_edge(
                        pgq_graph::tx::NodeRef::New(slot[&e.src]),
                        pgq_graph::tx::NodeRef::New(slot[&e.dst]),
                        e.ty,
                        e.props.clone(),
                    );
                }
                engine.apply(&tx).unwrap();
                for (name, q) in views {
                    engine.register_view(name, q).unwrap();
                }
                engine.snapshot().unwrap();
            }
            let vfs = Arc::new(disk.vfs());

            // The cold baseline recovers from the SAME image with the
            // operator-state section stripped: identical snapshot
            // decode + graph restore, but every network node misses its
            // stored state and falls back to full re-initialisation
            // from the graph. The delta between the two suites is
            // exactly what warm restore buys.
            let cold_disk = MemDisk::new();
            {
                let src = disk.vfs();
                let dst = cold_disk.vfs();
                let generation = src
                    .list()
                    .unwrap()
                    .iter()
                    .filter_map(|n| pgq_durability::snapshot::parse_snap_name(n))
                    .max()
                    .expect("reference snapshot present");
                let mut snap = pgq_durability::Snapshot::load(&src, generation)
                    .expect("reference snapshot readable")
                    .expect("reference snapshot present");
                snap.states.clear();
                snap.write(&dst, generation).unwrap();
                let wal = pgq_durability::wal::wal_file(generation);
                if let Some(bytes) = src.read(&wal).unwrap() {
                    dst.append(&wal, &bytes).unwrap();
                }
            }
            let cold_vfs = Arc::new(cold_disk.vfs());

            // Correctness oracle outside the timing: both recovery
            // flavors must answer exactly alike.
            {
                let warm = GraphEngine::open_durable_with(vfs.clone()).unwrap();
                let cold = GraphEngine::open_durable_with(cold_vfs.clone()).unwrap();
                for (name, _) in views {
                    let rows = |e: &GraphEngine| {
                        let id = e.view_by_name(name).unwrap();
                        e.view(id).unwrap().results()
                    };
                    assert_eq!(
                        rows(&warm),
                        rows(&cold),
                        "warm recovery diverged from cold rebuild on recovery_{tag}/{name}"
                    );
                }
            }

            let mut warm_us = Vec::with_capacity(rounds);
            let mut cold_us = Vec::with_capacity(rounds);
            for _ in 0..rounds {
                let t0 = std::time::Instant::now();
                let e = GraphEngine::open_durable_with(vfs.clone()).unwrap();
                warm_us.push(t0.elapsed().as_nanos() as f64 / 1000.0);
                drop(e);

                let t0 = std::time::Instant::now();
                let e = GraphEngine::open_durable_with(cold_vfs.clone()).unwrap();
                cold_us.push(t0.elapsed().as_nanos() as f64 / 1000.0);
                drop(e);
            }
            let stats = round_stats(&warm_us);
            doc.suite(
                &format!("recovery_warm_{tag}"),
                "us_per_open",
                stats,
                1e6 / stats.median,
            );
            let stats = round_stats(&cold_us);
            doc.suite(
                &format!("recovery_cold_{tag}"),
                "us_per_open",
                stats,
                1e6 / stats.median,
            );
        }
    }

    // wal_compact_{on,off}: steady churn against a durable engine on
    // an in-memory Vfs with an aggressive snapshot cadence, compaction
    // armed vs pinned-generation. Measures the per-tx cost of the
    // generation-switchover machinery (extra snapshot rename + old-gen
    // deletion per cadence); the payoff it buys — bounded disk — is
    // asserted separately in tests/durability_faults.rs.
    {
        use pgq_durability::MemDisk;
        use std::sync::Arc;

        let txs = if quick { 96 } else { 240 };
        let make_stream = |n: usize| -> Vec<Transaction> {
            (0..n)
                .map(|i| {
                    let mut tx = Transaction::new();
                    tx.create_vertex(
                        [Symbol::intern("Post")],
                        [("lang", Value::Int(i as i64 % 5))]
                            .into_iter()
                            .map(|(k, v)| (Symbol::intern(k), v))
                            .collect(),
                    );
                    tx
                })
                .collect()
        };
        let stream = make_stream(txs);
        for (tag, compact) in [("on", true), ("off", false)] {
            let mut us_rounds = Vec::with_capacity(rounds);
            for _ in 0..rounds {
                let disk = MemDisk::new();
                let mut e = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
                e.set_snapshot_every(8);
                e.set_wal_compact(compact);
                let t0 = std::time::Instant::now();
                for tx in &stream {
                    e.apply(tx).unwrap();
                }
                us_rounds.push(t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0);
            }
            let stats = round_stats(&us_rounds);
            doc.suite(
                &format!("wal_compact_{tag}"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
        }

        // group_commit_{w1,w8}: fsync-always against the *real*
        // filesystem (a scratch directory), where sync_data has a true
        // cost — exactly what an 8-commit flush window amortises. The
        // snapshot cadence is disabled so the suite isolates
        // append+fsync.
        let gtxs = if quick { 32 } else { 96 };
        let gstream = make_stream(gtxs);
        for (tag, window) in [("w1", 1u64), ("w8", 8u64)] {
            let mut us_rounds = Vec::with_capacity(rounds);
            for round in 0..rounds {
                let dir = std::env::temp_dir()
                    .join(format!("pgq_bench_gc_{}_{tag}_{round}", std::process::id()));
                std::fs::create_dir_all(&dir).unwrap();
                let vfs =
                    pgq_durability::StdVfs::new(&dir, pgq_durability::FsyncMode::Always).unwrap();
                let mut e = GraphEngine::open_durable_with(Arc::new(vfs)).unwrap();
                e.set_snapshot_every(0);
                e.set_fsync(pgq_durability::FsyncMode::Always);
                e.set_flush_window(window);
                let t0 = std::time::Instant::now();
                for tx in &gstream {
                    e.apply(tx).unwrap();
                }
                us_rounds.push(t0.elapsed().as_nanos() as f64 / gstream.len() as f64 / 1000.0);
                drop(e);
                let _ = std::fs::remove_dir_all(&dir);
            }
            let stats = round_stats(&us_rounds);
            doc.suite(
                &format!("group_commit_{tag}"),
                "us_per_tx",
                stats,
                1e6 / stats.median,
            );
        }
    }

    std::fs::write(path, doc.render()).expect("write BENCH.json");
    eprintln!("wrote {path}");
}

/// E5: Train-Benchmark-shaped validation, IVM vs recompute per query and
/// model size.
fn e5_train_benchmark(quick: bool) {
    println!("## T-E5 — railway validation (Train Benchmark shape)\n");
    let sizes: &[u32] = if quick { &[2, 3] } else { &[2, 4, 6, 8] };
    let queries = [
        ("PosLength", rq::POS_LENGTH),
        ("SwitchSet", rq::SWITCH_SET),
        ("RouteSensor", rq::ROUTE_SENSOR),
        ("RouteSensorNeg", rq::ROUTE_SENSOR_NEG),
        ("SwitchMonitoredNeg", rq::SWITCH_MONITORED_NEG),
        ("ConnectedSegments", rq::CONNECTED_SEGMENTS),
    ];
    let stream_len = if quick { 50 } else { 200 };
    let mut table = Table::new(&[
        "size (routes)",
        "|V|",
        "|E|",
        "query",
        "IVM µs/tx",
        "recompute µs/tx",
        "speed-up",
    ]);
    for &k in sizes {
        let mut rw = generate_railway(RailwayParams::size(k, 7));
        let stream = rw.fault_stream(stream_len);
        for (name, q) in queries {
            let qs = [(name, q)];
            let (_, ivm, engine) = run_ivm(&rw.graph, &qs, CompileOptions::default(), &stream);
            check_agreement(&engine, &qs);
            let compiled = [compile(q, CompileOptions::default())];
            let (_, rec) = run_recompute(&rw.graph, &compiled, &stream);
            table.row(vec![
                format!("{}", 1u32 << k),
                format!("{}", rw.graph.vertex_count()),
                format!("{}", rw.graph.edge_count()),
                name.to_string(),
                format!("{:.1}", ivm.us_per_tx()),
                format!("{:.1}", rec.us_per_tx()),
                format!("{:.0}×", rec.us_per_tx() / ivm.us_per_tx().max(0.001)),
            ]);
        }
    }
    println!("{}", table.render());
}

/// E6: social stream, the paper's thread query under churn.
fn e6_social(quick: bool) {
    println!("## T-E6 — social network stream (LDBC SNB shape)\n");
    let sfs: &[f64] = if quick {
        &[0.1, 0.25]
    } else {
        &[0.1, 0.25, 0.5, 1.0, 2.0]
    };
    let stream_len = if quick { 50 } else { 200 };
    let mut table = Table::new(&[
        "scale factor",
        "|V|",
        "|E|",
        "view rows",
        "IVM build",
        "IVM µs/tx",
        "recompute µs/tx",
        "speed-up",
    ]);
    for &sf in sfs {
        let mut net = generate_social(SocialParams::scale(sf, 42));
        let stream = net.update_stream(stream_len, (4, 2, 3, 1));
        let qs = [("threads", sq::SAME_LANG_THREAD)];
        let (build, ivm, engine) = run_ivm(&net.graph, &qs, CompileOptions::default(), &stream);
        check_agreement(&engine, &qs);
        let compiled = [compile(sq::SAME_LANG_THREAD, CompileOptions::default())];
        let (_, rec) = run_recompute(&net.graph, &compiled, &stream);
        let id = engine.view_by_name("threads").unwrap();
        table.row(vec![
            format!("{sf}"),
            format!("{}", net.graph.vertex_count()),
            format!("{}", net.graph.edge_count()),
            format!("{}", engine.view(id).unwrap().row_count()),
            us(build),
            format!("{:.1}", ivm.us_per_tx()),
            format!("{:.1}", rec.us_per_tx()),
            format!("{:.0}×", rec.us_per_tx() / ivm.us_per_tx().max(0.001)),
        ]);
    }
    println!("{}", table.render());
}

/// E7: transitive-closure maintenance on reply trees — cost is
/// proportional to affected paths, not graph size.
fn e7_transitive(quick: bool) {
    println!("## T-E7 — incremental transitive closure (reply trees)\n");
    let shapes: &[(usize, usize)] = if quick {
        &[(4, 2), (6, 2)]
    } else {
        &[(4, 2), (6, 2), (8, 2), (3, 4), (12, 1)]
    };
    let mut table = Table::new(&[
        "tree (depth×fanout)",
        "paths",
        "IVM leaf churn µs/tx",
        "IVM root churn µs/tx",
        "recompute µs/tx",
    ]);
    for &(depth, fanout) in shapes {
        let tree = reply_tree(depth, fanout);
        // Leaf churn: delete + re-add one deepest edge.
        let leaf_edge = *tree.edges.last().unwrap();
        let leaf_data = tree.graph.edge(leaf_edge).unwrap().clone();
        // Root churn: delete + re-add the first edge under the root.
        let root_edge = tree.edges[0];
        let root_data = tree.graph.edge(root_edge).unwrap().clone();

        let churn = |edge, data: &pgq_graph::store::EdgeData, iters: usize| {
            let mut engine = GraphEngine::from_graph(tree.graph.clone());
            engine.register_view("t", EXAMPLE_QUERY).unwrap();
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                let mut tx = Transaction::new();
                tx.delete_edge(edge);
                engine.apply(&tx).unwrap();
                // Re-insert with the same endpoints (new id).
                let mut tx = Transaction::new();
                tx.create_edge(data.src, data.dst, data.ty, data.props.clone());
                let evs = engine.apply(&tx).unwrap();
                // Track the new edge id for the next round.
                let _ = evs;
            }
            t0.elapsed().as_micros() as f64 / (2 * iters) as f64
        };
        // Edge ids change across churn rounds; measure one round several
        // times from fresh engines instead.
        let rounds = if quick { 3 } else { 5 };
        let mut leaf_us = 0.0;
        let mut root_us = 0.0;
        for _ in 0..rounds {
            leaf_us += churn(leaf_edge, &leaf_data, 1);
            root_us += churn(root_edge, &root_data, 1);
        }
        leaf_us /= rounds as f64;
        root_us /= rounds as f64;

        // Recompute cost per transaction.
        let compiled = [compile(EXAMPLE_QUERY, CompileOptions::default())];
        let mut tx = Transaction::new();
        tx.delete_edge(leaf_edge);
        let (_, rec) = run_recompute(&tree.graph, &compiled, &[tx]);

        table.row(vec![
            format!("{depth}×{fanout}"),
            format!("{}", expected_root_paths(depth, fanout)),
            format!("{leaf_us:.1}"),
            format!("{root_us:.1}"),
            format!("{:.1}", rec.us_per_tx()),
        ]);
    }
    println!("{}", table.render());
}

/// E8: fine-grained property updates (FGN) vs coarse re-creation vs
/// recompute.
fn e8_fgn(quick: bool) {
    println!("## T-E8 — fine-grained updates (FGN)\n");
    let mut net = generate_social(SocialParams::scale(if quick { 0.1 } else { 0.5 }, 42));
    let n = if quick { 50 } else { 200 };
    // Pure retag stream (fine-grained).
    let retags = net.update_stream(n, (0, 0, 1, 0));
    let qs = [("threads", sq::SAME_LANG_THREAD)];
    let (_, fine, engine) = run_ivm(&net.graph, &qs, CompileOptions::default(), &retags);
    check_agreement(&engine, &qs);

    // Coarse-grained equivalent: model each retag as delete + recreate of
    // the vertex (what a system without FGN must do). We simulate on
    // posts with their incident edges re-attached.
    let coarse_time = {
        let mut engine = GraphEngine::from_graph(net.graph.clone());
        engine
            .register_view("threads", sq::SAME_LANG_THREAD)
            .unwrap();
        let posts = net.posts.clone();
        let t0 = std::time::Instant::now();
        for (i, &p) in posts.iter().take(n).enumerate() {
            let data = engine.graph().vertex(p).unwrap().clone();
            let out: Vec<_> = engine
                .graph()
                .out_edges(p)
                .iter()
                .map(|&e| engine.graph().edge(e).unwrap().clone())
                .collect();
            let inc: Vec<_> = engine
                .graph()
                .in_edges(p)
                .iter()
                .map(|&e| engine.graph().edge(e).unwrap().clone())
                .collect();
            let mut tx = Transaction::new();
            tx.delete_vertex(p, true);
            let mut props = data.props.clone();
            props.set(Symbol::intern("lang"), Value::str(["en", "de"][i % 2]));
            let nv = tx.create_vertex(data.labels.iter().copied(), props);
            for e in out {
                tx.create_edge(nv, e.dst, e.ty, e.props.clone());
            }
            for e in inc {
                tx.create_edge(e.src, nv, e.ty, e.props.clone());
            }
            engine.apply(&tx).unwrap();
        }
        t0.elapsed().as_micros() as f64 / n.min(net.posts.len()) as f64
    };

    let compiled = [compile(sq::SAME_LANG_THREAD, CompileOptions::default())];
    let (_, rec) = run_recompute(&net.graph, &compiled, &retags);

    let mut table = Table::new(&["strategy", "µs per property update"]);
    table.row(vec![
        "IVM, fine-grained property delta (FGN)".into(),
        format!("{:.1}", fine.us_per_tx()),
    ]);
    table.row(vec![
        "IVM, coarse delete+recreate (no FGN)".into(),
        format!("{coarse_time:.1}"),
    ]);
    table.row(vec![
        "full recompute".into(),
        format!("{:.1}", rec.us_per_tx()),
    ]);
    println!("{}", table.render());
}

/// E9: memory and first-evaluation trade-off.
fn e9_memory(quick: bool) {
    println!("## T-E9 — memory / first-evaluation trade-off\n");
    let sizes: &[u32] = if quick { &[2, 3] } else { &[2, 4, 6, 8] };
    let mut table = Table::new(&[
        "size (routes)",
        "graph elems",
        "query",
        "view rows",
        "IVM memory tuples",
        "IVM build",
        "one recompute",
    ]);
    for &k in sizes {
        let rw = generate_railway(RailwayParams::size(k, 7));
        for (name, q) in [
            ("RouteSensor", rq::ROUTE_SENSOR),
            ("ConnectedSegments", rq::CONNECTED_SEGMENTS),
            ("SegmentReach", rq::SEGMENT_REACH),
        ] {
            let qs = [(name, q)];
            let (build, _, engine) = run_ivm(&rw.graph, &qs, CompileOptions::default(), &[]);
            let id = engine.view_by_name(name).unwrap();
            let view = engine.view(id).unwrap();
            let compiled = [compile(q, CompileOptions::default())];
            let (first, _) = run_recompute(&rw.graph, &compiled, &[]);
            table.row(vec![
                format!("{}", 1u32 << k),
                format!("{}", rw.graph.vertex_count() + rw.graph.edge_count()),
                name.to_string(),
                format!("{}", view.row_count()),
                format!("{}", view.memory_tuples()),
                us(build),
                us(first),
            ]);
        }
    }
    println!("{}", table.render());
}

/// E10: the paper's step-3 ablation — inferred-schema push-down vs
/// carrying whole property maps.
fn e10_ablation(quick: bool) {
    println!("## T-E10 — schema push-down ablation (paper step 3)\n");
    let mut net = generate_social(SocialParams::scale(if quick { 0.1 } else { 0.5 }, 42));
    let n = if quick { 50 } else { 200 };
    let retags = net.update_stream(n, (2, 0, 2, 0));
    let mut table = Table::new(&[
        "mode",
        "FRA total width",
        "IVM memory tuples",
        "IVM build",
        "IVM µs/tx",
    ]);
    for (label, mode) in [
        ("inferred schema (push-down, paper)", SchemaMode::Inferred),
        (
            "carry whole property maps (ablation)",
            SchemaMode::CarryMaps,
        ),
    ] {
        let options = CompileOptions {
            schema_mode: mode,
            ..CompileOptions::default()
        };
        let qs = [("threads", sq::SAME_LANG_THREAD)];
        let (build, ivm, engine) = run_ivm(&net.graph, &qs, options, &retags);
        check_agreement(&engine, &qs);
        let id = engine.view_by_name("threads").unwrap();
        let compiled = engine.view_compiled(id).unwrap();
        table.row(vec![
            label.to_string(),
            format!("{}", compiled.fra.total_width()),
            format!("{}", engine.view(id).unwrap().memory_tuples()),
            us(build),
            format!("{:.1}", ivm.us_per_tx()),
        ]);
    }
    println!("{}", table.render());
}

/// E12 (extension): the statistics-driven join-order planner on the
/// skewed hub workload — cost-based order vs the syntactic order.
fn e12_planner(quick: bool) {
    println!("## T-E12 — cost-based join-order planner (hub fan-out skew)\n");
    let params = if quick {
        HubParams::quick()
    } else {
        HubParams::default()
    };
    let mut net = generate_hub(params);
    let n = if quick { 50 } else { 200 };
    let stream = net.update_stream(n);
    let mut table = Table::new(&[
        "query",
        "planned µs/tx",
        "syntactic µs/tx",
        "speed-up",
        "planned memory tuples",
        "syntactic memory tuples",
    ]);
    for (name, q) in [
        ("RareTopicFans", hq::RARE_TOPIC_FANS),
        ("RareCatFans", hq::RARE_CAT_FANS),
    ] {
        let run = |planned: bool| -> (f64, usize) {
            let mut e = GraphEngine::from_graph(net.graph.clone());
            if planned {
                e.register_view("v", q).unwrap();
            } else {
                e.register_view_unplanned("v", q).unwrap();
            }
            let t0 = std::time::Instant::now();
            for tx in &stream {
                e.apply(tx).unwrap();
            }
            let us = t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0;
            let id = e.view_by_name("v").unwrap();
            (us, e.view(id).unwrap().memory_tuples())
        };
        let (p_us, p_mem) = run(true);
        let (s_us, s_mem) = run(false);
        table.row(vec![
            name.to_string(),
            format!("{p_us:.1}"),
            format!("{s_us:.1}"),
            format!("{:.1}×", s_us / p_us.max(0.001)),
            format!("{p_mem}"),
            format!("{s_mem}"),
        ]);
    }
    println!("{}", table.render());
}

/// E13 (extension): worst-case optimal n-ary joins on cyclic motifs —
/// the fused ⨝ⁿ plan vs the binary join tree, with the intermediate
/// evidence for the asymptotic claim: join-memory tuples and (when
/// built with `--features ivm-stats`) the per-operator emit counters.
/// Binary trees emit every wedge (Θ(Σ deg²) on this skew); ⨝ⁿ emits
/// only motif instances, so its counter stays flat as |E| grows.
fn e13_wcoj(quick: bool) {
    println!("## T-E13 — worst-case optimal joins (cyclic motifs)\n");
    let sizes: &[(usize, usize)] = if quick {
        &[(60, 150), (120, 400)]
    } else {
        &[(300, 900), (600, 2400), (1200, 6000)]
    };
    let n = if quick { 30 } else { 50 };
    let mut table = Table::new(&[
        "|V| / |E|",
        "query",
        "wcoj µs/tx",
        "binary µs/tx",
        "speed-up",
        "wcoj mem tuples",
        "binary mem tuples",
        "wcoj emits",
        "binary join emits",
    ]);
    for &(nodes, edges) in sizes {
        let mut net = generate_motifs(MotifParams {
            nodes,
            edges,
            ..MotifParams::default()
        });
        let stream = net.churn(n, 0.3);
        for (name, q) in [
            ("Triangles", mq::TRIANGLES),
            ("FourCycles", mq::FOUR_CYCLES),
        ] {
            // (µs/tx, view memory tuples, tuples emitted during the
            // stream by ⨝ⁿ nodes and by binary join nodes). The emit
            // counters are process-global, so the engines run strictly
            // one at a time with a reset in between; they read zero
            // unless built with the `ivm-stats` feature.
            let run = |wcoj: bool| -> (f64, usize, u64, u64) {
                let mut e = GraphEngine::from_graph(net.graph.clone());
                if wcoj {
                    e.register_view("v", q).unwrap();
                } else {
                    e.register_view_binary("v", q).unwrap();
                }
                pgq_ivm::stats::counters::reset();
                let t0 = std::time::Instant::now();
                for tx in &stream {
                    e.apply(tx).unwrap();
                }
                let us = t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0;
                let c = pgq_ivm::stats::counters::snapshot();
                let id = e.view_by_name("v").unwrap();
                (
                    us,
                    e.view(id).unwrap().memory_tuples(),
                    c.wcoj_tuples_emitted,
                    c.join_tuples_emitted,
                )
            };
            let (w_us, w_mem, w_emit, _) = run(true);
            let (b_us, b_mem, _, b_emit) = run(false);
            table.row(vec![
                format!("{nodes} / {}", net.graph.edge_count()),
                name.to_string(),
                format!("{w_us:.1}"),
                format!("{b_us:.1}"),
                format!("{:.1}×", b_us / w_us.max(0.001)),
                format!("{w_mem}"),
                format!("{b_mem}"),
                format!("{w_emit}"),
                format!("{b_emit}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(emit counters require `--features ivm-stats`; they read 0 otherwise)\n");

    // Hub motif: the sorted-run backend's galloping intersection vs the
    // hash-trie fallback, fusion forced on both so the plan is
    // identical. The gallop/probe counters make the mechanism visible:
    // sorted probe counts track the intersection output, hash probe
    // counts track hub degree.
    println!("### hub motif — sorted-run galloping vs hash tries\n");
    let hub_sizes: &[(usize, usize)] = if quick {
        &[(400, 8)]
    } else {
        &[(2_000, 20), (10_000, 100)]
    };
    let mut table = Table::new(&[
        "hub degree",
        "sorted µs/tx",
        "hash µs/tx",
        "speed-up",
        "sorted probes",
        "hash probes",
        "gallop steps",
    ]);
    for &(spokes, closers) in hub_sizes {
        let mut net = generate_hub_motifs(HubMotifParams {
            spokes,
            closers,
            seed: 11,
        });
        let stream = net.churn(n);
        let run = |sorted: bool| -> (f64, u64, u64) {
            let mut e = GraphEngine::from_graph(net.graph.clone());
            e.register_view_wcoj_forced("v", mq::TRIANGLES, sorted)
                .unwrap();
            pgq_ivm::stats::counters::reset();
            let t0 = std::time::Instant::now();
            for tx in &stream {
                e.apply(tx).unwrap();
            }
            let us = t0.elapsed().as_nanos() as f64 / stream.len() as f64 / 1000.0;
            let c = pgq_ivm::stats::counters::snapshot();
            (us, c.intersect_probes, c.gallop_steps)
        };
        let (s_us, s_probes, s_gallops) = run(true);
        let (h_us, h_probes, _) = run(false);
        table.row(vec![
            format!("{spokes}"),
            format!("{s_us:.1}"),
            format!("{h_us:.1}"),
            format!("{:.1}×", h_us / s_us.max(0.001)),
            format!("{s_probes}"),
            format!("{h_probes}"),
            format!("{s_gallops}"),
        ]);
    }
    println!("{}", table.render());
    println!("(probe/gallop counters require `--features ivm-stats`; they read 0 otherwise)\n");
}

/// E11 (extension): the FRA optimiser — filter push-down + constant
/// folding — on a selective thread query.
fn e11_optimizer(quick: bool) {
    println!("## T-E11 — FRA optimiser (extension)\n");
    let mut net = generate_social(SocialParams::scale(if quick { 0.1 } else { 0.5 }, 42));
    let n = if quick { 50 } else { 200 };
    let stream = net.update_stream(n, (4, 2, 3, 1));
    let q = "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = 'en' AND p.lang = c.lang RETURN p, t";
    let mut table = Table::new(&["plan", "IVM memory tuples", "IVM build", "IVM µs/tx"]);
    for (label, options) in [
        ("unoptimised (paper pipeline)", CompileOptions::default()),
        (
            "optimised (push-down + folding)",
            CompileOptions::optimized(),
        ),
    ] {
        let qs = [("sel-threads", q)];
        let (build, ivm, engine) = run_ivm(&net.graph, &qs, options, &stream);
        check_agreement(&engine, &qs);
        let id = engine.view_by_name("sel-threads").unwrap();
        table.row(vec![
            label.to_string(),
            format!("{}", engine.view(id).unwrap().memory_tuples()),
            us(build),
            format!("{:.1}", ivm.us_per_tx()),
        ]);
    }
    println!("{}", table.render());
}
