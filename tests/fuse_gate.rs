//! Regression tests for the planner's catalog-driven fuse/don't-fuse
//! decision over cyclic regions, pinned at the certified bench scales.
//!
//! The decision is a pure function of the region structure and the
//! statistics snapshot, and the motif/hub generators are seeded, so
//! these assertions are deterministic. They encode the calibration
//! contract behind the certified numbers in BENCH.json: triangles fuse
//! at the measured scales (the ⨝ⁿ node wins there), four-cycles stay on
//! the binary join tree (PR 7 measured the fused node at 0.7–0.8×), and
//! hub-skewed catalogs always fuse (wedge blow-up is the binding cost).

use pgq_core::GraphEngine;
use pgq_workloads::motifs::{
    generate_hub_motifs, generate_motifs, queries, HubMotifParams, MotifParams,
};

/// Skip under `PGQ_DISABLE_WCOJ=1` or `PGQ_DISABLE_PLANNER=1` (the CI
/// kill-switch legs): fusion is a planner decision, so under either
/// toggle there is no candidate, no gate, and no decision line to
/// assert on.
fn wcoj_on() -> bool {
    pgq_ivm::wcoj_enabled() && pgq_ivm::planner_enabled()
}

/// The Stage-4 `wcoj:` decision line of EXPLAIN on `query` over `engine`.
fn decision_line(engine: &GraphEngine, query: &str) -> String {
    let explain = engine.explain(query).unwrap();
    explain
        .lines()
        .find(|l| l.starts_with("wcoj: cyclic region"))
        .unwrap_or_else(|| panic!("no fuse decision in EXPLAIN output:\n{explain}"))
        .to_string()
}

fn motif_engine(nodes: usize, edges: usize) -> GraphEngine {
    let net = generate_motifs(MotifParams {
        nodes,
        edges,
        ..MotifParams::default()
    });
    GraphEngine::from_graph(net.graph)
}

#[test]
fn triangles_fuse_at_certified_scales() {
    if !wcoj_on() {
        return;
    }
    for (nodes, edges) in [(300, 900), (1200, 6000)] {
        let line = decision_line(&motif_engine(nodes, edges), queries::TRIANGLES);
        assert!(
            line.ends_with("fused ⨝ⁿ"),
            "triangles at {nodes}/{edges} should fuse: {line}"
        );
    }
}

#[test]
fn four_cycles_stay_binary_at_certified_scales() {
    if !wcoj_on() {
        return;
    }
    for (nodes, edges) in [(300, 900), (1200, 6000)] {
        let line = decision_line(&motif_engine(nodes, edges), queries::FOUR_CYCLES);
        assert!(
            line.ends_with("binary join tree"),
            "4-cycles at {nodes}/{edges} should stay binary: {line}"
        );
    }
}

#[test]
fn hub_catalog_fuses_triangles() {
    if !wcoj_on() {
        return;
    }
    let net = generate_hub_motifs(HubMotifParams::quick());
    let engine = GraphEngine::from_graph(net.graph);
    let line = decision_line(&engine, queries::TRIANGLES);
    assert!(
        line.ends_with("fused ⨝ⁿ"),
        "hub-skewed catalog should fuse triangles: {line}"
    );
}

#[test]
fn explain_shows_both_estimates() {
    if !wcoj_on() {
        return;
    }
    let line = decision_line(&motif_engine(300, 900), queries::TRIANGLES);
    assert!(
        line.contains("n-ary ≈") && line.contains("vs binary ≈") && line.contains("mem ≈"),
        "decision line should carry both cost and memory estimates: {line}"
    );
}

#[test]
fn forced_registration_fuses_below_the_gate() {
    if !wcoj_on() {
        return;
    }
    // At quick scale the gate keeps triangles binary (the catalog says
    // the intersection overhead is not paid back)…
    let net = generate_motifs(MotifParams::quick());
    let mut engine = GraphEngine::from_graph(net.graph.clone());
    let line = decision_line(&engine, queries::TRIANGLES);
    assert!(
        line.ends_with("binary join tree"),
        "quick-scale triangles should stay binary: {line}"
    );
    // …but a forced registration still pins the ⨝ⁿ node (benchmarks
    // and the differential oracle rely on this), and the fused view
    // maintains the same rows as the cost-based one.
    engine
        .register_view_wcoj_forced("forced", queries::TRIANGLES, true)
        .unwrap();
    engine.register_view("gated", queries::TRIANGLES).unwrap();
    let mut net = net;
    let mut g2 = GraphEngine::from_graph(net.graph.clone());
    for tx in net.churn(40, 0.3) {
        engine.apply(&tx).unwrap();
        g2.apply(&tx).unwrap();
    }
    let rows = |e: &GraphEngine, name: &str| {
        let id = e.view_by_name(name).unwrap();
        e.view(id).unwrap().results()
    };
    assert_eq!(rows(&engine, "forced"), rows(&engine, "gated"));
}
