//! openCypher acceptance battery, TCK-style: each case is (setup
//! statements, query, expected rows rendered as strings). Every case runs
//! **twice** — once through the baseline evaluator and once as an
//! incrementally maintained view built *before* the setup statements are
//! applied, so the view reaches the answer purely through delta
//! propagation. (Cases with ORDER BY/SKIP/LIMIT run baseline-only, per
//! the paper's fragment.)

use pgq_core::GraphEngine;

struct Case {
    name: &'static str,
    setup: &'static [&'static str],
    query: &'static str,
    /// Expected rows, each rendered `v1|v2|...`, order-insensitive.
    expect: &'static [&'static str],
    /// Whether the query is maintainable (run the view path too).
    view: bool,
}

fn render_rows(rows: &[pgq_common::tuple::Tuple]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|t| {
            t.values()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

fn run_case(case: &Case) {
    // Baseline path: setup, then one-shot query.
    let mut engine = GraphEngine::new();
    for stmt in case.setup {
        engine
            .execute(stmt)
            .unwrap_or_else(|e| panic!("[{}] setup `{stmt}`: {e}", case.name));
    }
    let got = render_rows(
        &engine
            .query(case.query)
            .unwrap_or_else(|e| panic!("[{}] query: {e}", case.name))
            .rows,
    );
    let mut want: Vec<String> = case.expect.iter().map(|s| s.to_string()).collect();
    want.sort();
    assert_eq!(got, want, "[{}] baseline mismatch", case.name);

    if case.view {
        // IVM path: register the view first, then stream the setup.
        let mut engine = GraphEngine::new();
        let view = engine
            .register_view("case", case.query)
            .unwrap_or_else(|e| panic!("[{}] register: {e}", case.name));
        for stmt in case.setup {
            engine.execute(stmt).unwrap();
        }
        let got = render_rows(&engine.view_results(view).unwrap());
        assert_eq!(got, want, "[{}] IVM mismatch", case.name);
    }
}

macro_rules! cases {
    ($($case:expr),+ $(,)?) => {
        $(run_case(&$case);)+
    };
}

#[test]
fn node_patterns_and_labels() {
    cases![
        Case {
            name: "label filter",
            setup: &[
                "CREATE (:A {x: 1})",
                "CREATE (:B {x: 2})",
                "CREATE (:A:B {x: 3})"
            ],
            query: "MATCH (n:A) RETURN n.x",
            expect: &["1", "3"],
            view: true,
        },
        Case {
            name: "conjunctive labels",
            setup: &["CREATE (:A {x: 1})", "CREATE (:A:B {x: 3})"],
            query: "MATCH (n:A:B) RETURN n.x",
            expect: &["3"],
            view: true,
        },
        Case {
            name: "label predicate in where",
            setup: &["CREATE (:A {x: 1})", "CREATE (:A:B {x: 3})"],
            query: "MATCH (n:A) WHERE n:B RETURN n.x",
            expect: &["3"],
            view: true,
        },
        Case {
            name: "inline property map",
            setup: &["CREATE (:A {x: 1, y: 'k'})", "CREATE (:A {x: 2, y: 'k'})"],
            query: "MATCH (n:A {x: 2, y: 'k'}) RETURN n.x",
            expect: &["2"],
            view: true,
        },
        Case {
            name: "unlabelled scan",
            setup: &["CREATE (:A {x: 1})", "CREATE (:B {x: 2})"],
            query: "MATCH (n) RETURN n.x",
            expect: &["1", "2"],
            view: true,
        },
    ];
}

#[test]
fn relationship_patterns() {
    cases![
        Case {
            name: "directed match",
            setup: &["CREATE (:A {x: 1})-[:R]->(:B {x: 2})"],
            query: "MATCH (a)-[:R]->(b) RETURN a.x, b.x",
            expect: &["1|2"],
            view: true,
        },
        Case {
            name: "reverse direction",
            setup: &["CREATE (:A {x: 1})-[:R]->(:B {x: 2})"],
            query: "MATCH (a)<-[:R]-(b) RETURN a.x, b.x",
            expect: &["2|1"],
            view: true,
        },
        Case {
            name: "undirected match sees both orientations",
            setup: &["CREATE (:A {x: 1})-[:R]->(:B {x: 2})"],
            query: "MATCH (a)-[:R]-(b) RETURN a.x, b.x",
            expect: &["1|2", "2|1"],
            view: true,
        },
        Case {
            name: "type disjunction",
            setup: &[
                "CREATE (:A {x: 1})-[:R]->(:B {x: 2})",
                "MATCH (a:A) CREATE (a)-[:S]->(:B {x: 3})",
                "MATCH (a:A) CREATE (a)-[:T]->(:B {x: 4})",
            ],
            query: "MATCH (a:A)-[:R|S]->(b) RETURN b.x",
            expect: &["2", "3"],
            view: true,
        },
        Case {
            name: "edge property filter",
            setup: &[
                "CREATE (:A {x: 1})-[:R {w: 1}]->(:B {x: 2})",
                "MATCH (a:A) CREATE (a)-[:R {w: 9}]->(:B {x: 3})",
            ],
            query: "MATCH (a)-[e:R]->(b) WHERE e.w > 5 RETURN b.x",
            expect: &["3"],
            view: true,
        },
        Case {
            name: "two-hop chain",
            setup: &["CREATE (:A {x: 1})-[:R]->(:B {x: 2})-[:R]->(:C {x: 3})"],
            query: "MATCH (a:A)-[:R]->(b)-[:R]->(c) RETURN a.x, b.x, c.x",
            expect: &["1|2|3"],
            view: true,
        },
        Case {
            name: "edge uniqueness within a match",
            setup: &["CREATE (:A {x: 1})-[:R]->(:A {x: 2})"],
            // Without relationship uniqueness this would match (e, e).
            query: "MATCH (a)-[e1:R]->(b)-[e2:R]->(c) RETURN a.x",
            expect: &[],
            view: true,
        },
        Case {
            name: "cycle closing",
            setup: &[
                "CREATE (:A {x: 1})-[:R]->(:B {x: 2})",
                "MATCH (b:B) CREATE (b)-[:S]->(:A {x: 9})",
                "MATCH (a:A {x: 1}) MATCH (b:B) CREATE (b)-[:S]->(a)",
            ],
            query: "MATCH (a:A)-[:R]->(b)-[:S]->(a) RETURN a.x",
            expect: &["1"],
            view: true,
        },
        Case {
            name: "self loop",
            setup: &["CREATE (:A {x: 1})", "MATCH (a:A) CREATE (a)-[:R]->(a)"],
            query: "MATCH (a)-[:R]->(a) RETURN a.x",
            expect: &["1"],
            view: true,
        },
    ];
}

#[test]
fn variable_length_paths() {
    let chain: &[&str] =
        &["CREATE (:N {x: 1})-[:R]->(:N {x: 2})-[:R]->(:N {x: 3})-[:R]->(:N {x: 4})"];
    cases![
        Case {
            name: "star is one or more",
            setup: chain,
            query: "MATCH (a:N {x: 1})-[:R*]->(b) RETURN b.x",
            expect: &["2", "3", "4"],
            view: true,
        },
        Case {
            name: "exact hops",
            setup: chain,
            query: "MATCH (a:N {x: 1})-[:R*2]->(b) RETURN b.x",
            expect: &["3"],
            view: true,
        },
        Case {
            name: "bounded range",
            setup: chain,
            query: "MATCH (a:N {x: 1})-[:R*2..3]->(b) RETURN b.x",
            expect: &["3", "4"],
            view: true,
        },
        Case {
            name: "zero hops include self",
            setup: chain,
            query: "MATCH (a:N {x: 1})-[:R*0..1]->(b) RETURN b.x",
            expect: &["1", "2"],
            view: true,
        },
        Case {
            name: "path length function",
            setup: chain,
            query: "MATCH t = (a:N {x: 1})-[:R*]->(b:N {x: 4}) RETURN length(t)",
            expect: &["3"],
            view: true,
        },
        Case {
            name: "multiplicity equals path count",
            setup: &[
                // Diamond: two paths from 1 to 4.
                "CREATE (:D {x: 1})-[:R]->(:D {x: 2})-[:R]->(:D {x: 4})",
                "MATCH (a:D {x: 1}) CREATE (a)-[:R]->(:D {x: 3})",
                "MATCH (c:D {x: 3}) MATCH (d:D {x: 4}) CREATE (c)-[:R]->(d)",
            ],
            query: "MATCH (a:D {x: 1})-[:R*2]->(b) RETURN b.x",
            expect: &["4", "4"],
            view: true,
        },
        Case {
            name: "variable-length with inline edge prop",
            setup: &[
                "CREATE (:M {x: 1})-[:R {ok: true}]->(:M {x: 2})",
                "MATCH (b:M {x: 2}) CREATE (b)-[:R {ok: false}]->(:M {x: 3})",
            ],
            query: "MATCH (a:M {x: 1})-[:R* {ok: true}]->(b) RETURN b.x",
            expect: &["2"],
            view: true,
        },
    ];
}

#[test]
fn where_semantics() {
    let setup: &[&str] = &[
        "CREATE (:P {x: 1, s: 'alpha'})",
        "CREATE (:P {x: 2, s: 'beta'})",
        "CREATE (:P {x: 3})",
    ];
    cases![
        Case {
            name: "null comparisons filter out",
            setup,
            query: "MATCH (n:P) WHERE n.s = 'alpha' RETURN n.x",
            expect: &["1"],
            view: true,
        },
        Case {
            name: "is null",
            setup,
            query: "MATCH (n:P) WHERE n.s IS NULL RETURN n.x",
            expect: &["3"],
            view: true,
        },
        Case {
            name: "is not null",
            setup,
            query: "MATCH (n:P) WHERE n.s IS NOT NULL RETURN n.x",
            expect: &["1", "2"],
            view: true,
        },
        Case {
            name: "string predicates",
            setup,
            query: "MATCH (n:P) WHERE n.s STARTS WITH 'a' OR n.s ENDS WITH 'ta' RETURN n.x",
            expect: &["1", "2"],
            view: true,
        },
        Case {
            name: "in list",
            setup,
            query: "MATCH (n:P) WHERE n.x IN [1, 3, 5] RETURN n.x",
            expect: &["1", "3"],
            view: true,
        },
        Case {
            name: "three valued not",
            // NOT (null = 'x') is null → filtered.
            setup,
            query: "MATCH (n:P) WHERE NOT n.s = 'alpha' RETURN n.x",
            expect: &["2"],
            view: true,
        },
        Case {
            name: "arithmetic in predicate",
            setup,
            query: "MATCH (n:P) WHERE n.x * 2 + 1 >= 5 RETURN n.x",
            expect: &["2", "3"],
            view: true,
        },
    ];
}

#[test]
fn return_shapes() {
    let setup: &[&str] = &[
        "CREATE (:P {x: 1, lang: 'en'})",
        "CREATE (:P {x: 2, lang: 'en'})",
        "CREATE (:P {x: 3, lang: 'de'})",
    ];
    cases![
        Case {
            name: "distinct",
            setup,
            query: "MATCH (n:P) RETURN DISTINCT n.lang",
            expect: &["'de'", "'en'"],
            view: true,
        },
        Case {
            name: "expressions and aliases",
            setup,
            query: "MATCH (n:P) WHERE n.x = 1 RETURN n.x + 10 AS big, toUpper(n.lang) AS u",
            expect: &["11|'EN'"],
            view: true,
        },
        Case {
            name: "count star groups",
            setup,
            query: "MATCH (n:P) RETURN n.lang AS l, count(*) AS c",
            expect: &["'de'|1", "'en'|2"],
            view: true,
        },
        Case {
            name: "global aggregates over empty input",
            setup: &[],
            query: "MATCH (n:P) RETURN count(*) AS c, sum(n.x) AS s, min(n.x) AS m",
            expect: &["0|0|null"],
            view: true,
        },
        Case {
            name: "sum avg min max collect",
            setup,
            query: "MATCH (n:P) RETURN sum(n.x), avg(n.x), min(n.x), max(n.x), collect(n.x)",
            expect: &["6|2|1|3|[1, 2, 3]"],
            view: true,
        },
        Case {
            name: "count distinct",
            setup,
            query: "MATCH (n:P) RETURN count(DISTINCT n.lang) AS c",
            expect: &["2"],
            view: true,
        },
        Case {
            name: "order by desc with limit (baseline only)",
            setup,
            query: "MATCH (n:P) RETURN n.x AS x ORDER BY x DESC LIMIT 2",
            expect: &["2", "3"],
            view: false,
        },
        Case {
            name: "skip",
            setup,
            query: "MATCH (n:P) RETURN n.x AS x ORDER BY x SKIP 1",
            expect: &["2", "3"],
            view: false,
        },
    ];
}

#[test]
fn unwind_and_functions() {
    cases![
        Case {
            name: "unwind literal list",
            setup: &["CREATE (:One)"],
            query: "MATCH (o:One) UNWIND [10, 20] AS x RETURN x",
            expect: &["10", "20"],
            view: true,
        },
        Case {
            name: "unwind path nodes with property access",
            setup: &["CREATE (:Post {lang: 'en'})-[:REPLY]->(:Comm {lang: 'fr'})"],
            query: "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n \
                    RETURN n.lang",
            expect: &["'en'", "'fr'"],
            view: true,
        },
        Case {
            name: "size and coalesce",
            setup: &["CREATE (:P {s: 'abc'})"],
            query: "MATCH (n:P) RETURN size(n.s), coalesce(n.missing, 42)",
            expect: &["3|42"],
            view: true,
        },
        Case {
            name: "id function",
            setup: &["CREATE (:P)"],
            query: "MATCH (n:P) RETURN id(n) >= 0",
            expect: &["true"],
            view: true,
        },
    ];
}

#[test]
fn multiple_matches_and_cartesian() {
    cases![
        Case {
            name: "cartesian product",
            setup: &[
                "CREATE (:A {x: 1})",
                "CREATE (:A {x: 2})",
                "CREATE (:B {y: 7})"
            ],
            query: "MATCH (a:A) MATCH (b:B) RETURN a.x, b.y",
            expect: &["1|7", "2|7"],
            view: true,
        },
        Case {
            name: "shared variable joins matches",
            setup: &[
                "CREATE (:A {x: 1})-[:R]->(:B {y: 2})",
                "MATCH (b:B) CREATE (b)-[:S]->(:C {z: 3})",
            ],
            query: "MATCH (a:A)-[:R]->(b) MATCH (b)-[:S]->(c) RETURN a.x, c.z",
            expect: &["1|3"],
            view: true,
        },
        Case {
            name: "comma patterns in one match",
            setup: &["CREATE (:A {x: 1})", "CREATE (:B {y: 2})"],
            query: "MATCH (a:A), (b:B) RETURN a.x, b.y",
            expect: &["1|2"],
            view: true,
        },
    ];
}

#[test]
fn update_statement_semantics() {
    // These exercise execute() itself; assertions via follow-up queries.
    let mut e = GraphEngine::new();
    e.execute("CREATE (:P {x: 1})").unwrap();
    // SET on all matches.
    e.execute("MATCH (n:P) SET n.y = n.x * 10").unwrap();
    let r = e.query("MATCH (n:P) RETURN n.y").unwrap();
    assert_eq!(render_rows(&r.rows), vec!["10"]);
    // Label juggling.
    e.execute("MATCH (n:P) SET n:Q").unwrap();
    assert_eq!(e.query("MATCH (n:Q) RETURN n.x").unwrap().rows.len(), 1);
    e.execute("MATCH (n:P) REMOVE n:Q").unwrap();
    assert_eq!(e.query("MATCH (n:Q) RETURN n.x").unwrap().rows.len(), 0);
    // CREATE with multiple rows: one comment per post.
    e.execute("CREATE (:P {x: 2})").unwrap();
    e.execute("MATCH (p:P) CREATE (p)-[:HAS]->(:C)").unwrap();
    assert_eq!(
        e.query("MATCH (:P)-[:HAS]->(c:C) RETURN c")
            .unwrap()
            .rows
            .len(),
        2
    );
    // DETACH DELETE everything.
    e.execute("MATCH (n) DETACH DELETE n").unwrap();
    assert_eq!(e.graph().vertex_count(), 0);
}

#[test]
fn with_clause_cases() {
    cases![
        Case {
            name: "with rename",
            setup: &["CREATE (:P {x: 5})"],
            query: "MATCH (n:P) WITH n.x AS v RETURN v + 1",
            expect: &["6"],
            view: true,
        },
        Case {
            name: "with aggregate having",
            setup: &[
                "CREATE (:P {g: 'a'})",
                "CREATE (:P {g: 'a'})",
                "CREATE (:P {g: 'b'})",
            ],
            query: "MATCH (n:P) WITH n.g AS g, count(*) AS c WHERE c > 1 RETURN g, c",
            expect: &["'a'|2"],
            view: true,
        },
        Case {
            name: "with then expand",
            setup: &["CREATE (:P {x: 1})-[:R]->(:Q {y: 2})", "CREATE (:P {x: 9})",],
            query: "MATCH (n:P) WITH n WHERE n.x < 5 MATCH (n)-[:R]->(m:Q) RETURN n.x, m.y",
            expect: &["1|2"],
            view: true,
        },
        Case {
            name: "with distinct collapses",
            setup: &["CREATE (:P {x: 1})", "CREATE (:P {x: 1})"],
            query: "MATCH (n:P) WITH DISTINCT n.x AS x RETURN x",
            expect: &["1"],
            view: true,
        },
    ];
}

#[test]
fn bag_semantics_cases() {
    cases![
        Case {
            name: "parallel edges duplicate rows",
            setup: &[
                "CREATE (:A {x: 1})-[:R]->(:B {y: 2})",
                "MATCH (a:A) MATCH (b:B) CREATE (a)-[:R]->(b)",
            ],
            query: "MATCH (a:A)-[:R]->(b:B) RETURN a.x, b.y",
            expect: &["1|2", "1|2"],
            view: true,
        },
        Case {
            name: "distinct collapses duplicates",
            setup: &[
                "CREATE (:A {x: 1})-[:R]->(:B {y: 2})",
                "MATCH (a:A) MATCH (b:B) CREATE (a)-[:R]->(b)",
            ],
            query: "MATCH (a:A)-[:R]->(b:B) RETURN DISTINCT a.x, b.y",
            expect: &["1|2"],
            view: true,
        },
    ];
}
