//! Seeded random-interleaving stress tier for the parallel scheduler
//! and transaction batching (CI's `concurrency-stress` job).
//!
//! Each iteration derives a seed, generates a random update script over
//! a branch forest (lang churn, leaf growth, edge/vertex deletion,
//! label toggles), and replays it on one engine per propagation width
//! (1, 2, 4, 8). After every transaction the wider engines must report
//! view contents identical to the width-1 run; the width-1 run is
//! checked against from-scratch recomputation periodically and at the
//! end. The same script then replays through `apply_batch` and must
//! land in the same state.
//!
//! `PGQ_STRESS_ITERS` scales the number of seeded scripts (default 4;
//! the CI job raises it). Every assertion message carries the seed, so
//! a CI failure is reproducible locally by pinning `PGQ_STRESS_SEED`.

use pgq_algebra::pipeline::compile_query;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_core::GraphEngine;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_parser::parse_query;
use pgq_workloads::branches::{branch_forest, branch_query, BranchForest};

const WIDTHS: &[usize] = &[1, 2, 4, 8];
const LANGS: &[&str] = &["en", "de", "fr"];
const TXS_PER_SCRIPT: usize = 30;

/// xorshift64* — self-contained, deterministic, no dependencies.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Render one random single-op transaction against the current graph.
/// Single-op keeps every pick valid at apply time (no intra-transaction
/// conflicts), while `apply_batch` later recreates multi-op passes by
/// coalescing.
fn random_tx(rng: &mut XorShift, g: &PropertyGraph, forest: &BranchForest) -> Transaction {
    let vertices: Vec<_> = {
        let mut v: Vec<_> = g.vertex_ids().collect();
        v.sort_unstable();
        v
    };
    let edges: Vec<_> = {
        let mut e: Vec<_> = g.edge_ids().collect();
        e.sort_unstable();
        e
    };
    let lang = Symbol::intern("lang");
    let mut tx = Transaction::new();
    match rng.below(7) {
        // Flip a random vertex's lang — hits roots and descendants, the
        // widest churn when several branches flip in one script.
        0 | 1 if !vertices.is_empty() => {
            let v = vertices[rng.below(vertices.len())];
            tx.set_vertex_prop(v, lang, Value::str(LANGS[rng.below(LANGS.len())]));
        }
        // Flip every still-live branch root in one transaction (the
        // widest frontier the parallel pass sees).
        2 => {
            let l = LANGS[rng.below(LANGS.len())];
            for b in &forest.branches {
                if g.vertex(b.root).is_some() {
                    tx.set_vertex_prop(b.root, lang, Value::str(l));
                }
            }
        }
        // Grow a leaf: new C<i> vertex replying to a random existing
        // vertex (cross-branch edges are allowed — extra stress).
        3 if !vertices.is_empty() => {
            let b = &forest.branches[rng.below(forest.branches.len())];
            let parent = vertices[rng.below(vertices.len())];
            let c = tx.create_vertex(
                [b.comm],
                Properties::from_iter([("lang", Value::str(LANGS[rng.below(LANGS.len())]))]),
            );
            tx.create_edge(parent, c, b.reply, Properties::new());
        }
        4 if !edges.is_empty() => {
            tx.delete_edge(edges[rng.below(edges.len())]);
        }
        5 if !vertices.is_empty() => {
            tx.delete_vertex(vertices[rng.below(vertices.len())], true);
        }
        // Toggle a branch's descendant label on a random vertex.
        6 if !vertices.is_empty() => {
            let b = &forest.branches[rng.below(forest.branches.len())];
            let v = vertices[rng.below(vertices.len())];
            let has = g.vertex(v).map(|d| d.has_label(b.comm)).unwrap_or(false);
            if has {
                tx.remove_label(v, b.comm);
            } else {
                tx.add_label(v, b.comm);
            }
        }
        _ => {}
    }
    tx
}

fn view_rows(e: &GraphEngine, name: &str) -> Vec<(pgq_common::tuple::Tuple, i64)> {
    let id = e.view_by_name(name).expect("view registered");
    e.view(id).expect("view alive").results()
}

#[test]
fn seeded_interleavings_deterministic_across_widths() {
    let iters = env_usize("PGQ_STRESS_ITERS", 4);
    let base_seed = env_usize("PGQ_STRESS_SEED", 0xC0FFEE) as u64;
    for iter in 0..iters {
        let seed = base_seed
            .wrapping_add(iter as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = XorShift::new(seed);
        let forest = branch_forest(4, 2, 2);
        let mut template = GraphEngine::from_graph(forest.graph.clone());
        let mut compiled = Vec::new();
        for i in 0..forest.branches.len() {
            let q = branch_query(i);
            compiled.push(compile_query(&parse_query(&q).unwrap()).unwrap());
            template.register_view(&format!("b{i}"), &q).unwrap();
        }
        let mut engines: Vec<_> = WIDTHS
            .iter()
            .map(|&w| {
                let mut e = template.clone();
                e.set_threads(w);
                e
            })
            .collect();
        let mut shadow = forest.graph.clone();
        let mut txs = Vec::with_capacity(TXS_PER_SCRIPT);
        for t in 0..TXS_PER_SCRIPT {
            let tx = random_tx(&mut rng, &shadow, &forest);
            shadow
                .apply(&tx)
                .unwrap_or_else(|e| panic!("seed={seed:#x} tx {t}: shadow apply failed: {e:?}"));
            for engine in &mut engines {
                engine
                    .apply(&tx)
                    .unwrap_or_else(|e| panic!("seed={seed:#x} tx {t}: apply failed: {e:?}"));
            }
            for (i, plan) in compiled.iter().enumerate() {
                let name = format!("b{i}");
                let serial = view_rows(&engines[0], &name);
                for (engine, &w) in engines.iter().zip(WIDTHS).skip(1) {
                    assert_eq!(
                        view_rows(engine, &name),
                        serial,
                        "seed={seed:#x} tx {t}: width {w} diverged from serial on {name}"
                    );
                }
                // The recompute oracle is quadratic-ish on deep paths —
                // sample it rather than paying it every transaction.
                if t % 5 == 0 || t + 1 == TXS_PER_SCRIPT {
                    assert_eq!(
                        serial,
                        pgq_eval::evaluate_consolidated(&plan.fra, engines[0].graph()),
                        "seed={seed:#x} tx {t}: serial diverged from recompute on {name}"
                    );
                }
            }
            txs.push(tx);
        }
        // The same script through `apply_batch` (on a width-4 engine, so
        // coalesced passes run through the parallel scheduler too) must
        // land in exactly the serial end state.
        let mut batched = template.clone();
        batched.set_threads(4);
        let summary = batched
            .apply_batch(&txs)
            .unwrap_or_else(|e| panic!("seed={seed:#x}: apply_batch failed: {e:?}"));
        assert_eq!(summary.transactions, txs.len(), "seed={seed:#x}");
        assert!(summary.passes <= txs.len(), "seed={seed:#x}");
        for i in 0..forest.branches.len() {
            let name = format!("b{i}");
            assert_eq!(
                view_rows(&batched, &name),
                view_rows(&engines[0], &name),
                "seed={seed:#x}: apply_batch end state diverged on {name}"
            );
        }
        eprintln!(
            "stress iter {iter}: seed={seed:#x} ok ({} txs, {} batch passes)",
            txs.len(),
            summary.passes
        );
    }
}
