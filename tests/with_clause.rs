//! The WITH extension: mid-query projection, aggregation (HAVING
//! pattern), DISTINCT and scope narrowing — all incrementally
//! maintainable (they lower to the same π/γ/δ/σ operators).

use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_workloads::social::{generate_social, SocialParams};

fn seeded() -> GraphEngine {
    let mut e = GraphEngine::new();
    e.execute_script(
        "CREATE (:Post {lang: 'en', len: 10});\
         CREATE (:Post {lang: 'en', len: 20});\
         CREATE (:Post {lang: 'de', len: 30});\
         CREATE (:Post {lang: 'fr', len: 40});",
    )
    .unwrap();
    e
}

#[test]
fn with_projection_renames_scope() {
    let e = seeded();
    let r = e.query("MATCH (p:Post) WITH p.len AS l RETURN l").unwrap();
    assert_eq!(r.columns, vec!["l".to_string()]);
    assert_eq!(r.rows.len(), 4);
}

#[test]
fn with_aggregate_then_filter_is_having() {
    let e = seeded();
    let r = e
        .query(
            "MATCH (p:Post) WITH p.lang AS lang, count(*) AS n \
             WHERE n > 1 RETURN lang, n",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(0).as_str(), Some("en"));
    assert_eq!(r.rows[0].get(1).as_int(), Some(2));
}

#[test]
fn with_then_match_joins_on_projected_node() {
    let mut e = seeded();
    e.execute("MATCH (p:Post {lang: 'en'}) CREATE (p)-[:REPLY]->(:Comm {lang: 'en'})")
        .unwrap();
    let r = e
        .query(
            "MATCH (p:Post) WITH p WHERE p.lang = 'en' \
             MATCH (p)-[:REPLY]->(c:Comm) RETURN p, c",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn with_distinct() {
    let e = seeded();
    let r = e
        .query("MATCH (p:Post) WITH DISTINCT p.lang AS lang RETURN lang")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn chained_withs() {
    let e = seeded();
    let r = e
        .query(
            "MATCH (p:Post) WITH p.lang AS lang, p.len AS len \
             WITH lang, len * 2 AS dbl WHERE dbl >= 40 \
             RETURN lang, dbl",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3); // 20*2, 30*2, 40*2
}

#[test]
fn with_view_is_maintained_incrementally() {
    let mut e = GraphEngine::new();
    let view = e
        .register_view(
            "hot-langs",
            "MATCH (p:Post) WITH p.lang AS lang, count(*) AS n WHERE n >= 2 \
             RETURN lang, n",
        )
        .unwrap();
    e.execute("CREATE (:Post {lang: 'en'})").unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 0);
    e.execute("CREATE (:Post {lang: 'en'})").unwrap();
    let rows = e.view_results(view).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(1).as_int(), Some(2));
    // Dropping below the threshold retracts the group.
    e.execute("MATCH (p:Post) WITH p WHERE p.lang = 'en' DETACH DELETE p")
        .unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 0);
}

#[test]
fn with_differential_on_social_stream() {
    let mut net = generate_social(SocialParams::scale(0.1, 5));
    let stream = net.update_stream(60, (4, 2, 3, 1));
    let q = "MATCH (a:Person)-[:CREATED]->(p:Post) \
             WITH a, count(*) AS posts WHERE posts >= 2 \
             RETURN a, posts";
    let mut engine = GraphEngine::from_graph(net.graph.clone());
    let view = engine.register_view("prolific", q).unwrap();
    for tx in &stream {
        engine.apply(tx).unwrap();
    }
    let compiled = engine.view_compiled(view).unwrap();
    let want = evaluate_consolidated(&compiled.fra, engine.graph());
    assert_eq!(engine.view(view).unwrap().results(), want);
}

#[test]
fn dropped_names_are_out_of_scope() {
    let e = seeded();
    let err = e
        .query("MATCH (p:Post) WITH p.lang AS lang RETURN p")
        .unwrap_err();
    assert!(matches!(
        err,
        pgq_core::EngineError::Algebra(pgq_algebra::AlgebraError::UnknownVariable(_))
    ));
}

#[test]
fn rebinding_dropped_name_is_rejected() {
    let e = seeded();
    let err = e
        .query("MATCH (p:Post) WITH count(*) AS n MATCH (p:Post) RETURN n, p")
        .unwrap_err();
    assert!(matches!(
        err,
        pgq_core::EngineError::Algebra(pgq_algebra::AlgebraError::Unsupported(_))
    ));
}

#[test]
fn order_by_in_with_not_maintainable() {
    let e = seeded();
    let err = e
        .query("MATCH (p:Post) WITH p.len AS l ORDER BY l RETURN l")
        .unwrap_err();
    assert!(matches!(
        err,
        pgq_core::EngineError::Algebra(pgq_algebra::AlgebraError::NotMaintainable(_))
    ));
}
