//! The fragment boundary: which queries are incrementally maintainable?
//!
//! This test file encodes the paper's central claim — "the openCypher
//! language with unordered bags and atomic paths is incrementally
//! maintainable" — as executable assertions, both positively (everything
//! in the fragment registers as a view) and negatively (ordering/top-k
//! constructs are rejected with `NotMaintainable`, unsupported future-work
//! constructs with `Unsupported`).

use pgq_algebra::pipeline::compile_query;
use pgq_algebra::AlgebraError;
use pgq_parser::parse_query;

fn verdict(q: &str) -> Result<Vec<String>, AlgebraError> {
    compile_query(&parse_query(q).expect("parses")).map(|c| c.not_maintainable)
}

#[test]
fn maintainable_fragment_is_accepted() {
    let inside = [
        // MATCH with labels, types, directions, property patterns.
        "MATCH (p:Post {lang: 'en'}) RETURN p",
        "MATCH (a)-[:R]->(b)<-[:S]-(c) RETURN a, b, c",
        "MATCH (a)-[e:R|S]-(b) RETURN e",
        // WHERE with comparisons, logic, string predicates, IN, IS NULL.
        "MATCH (n) WHERE n.x > 1 AND (n.y < 2 OR NOT n.z = 3) RETURN n",
        "MATCH (n) WHERE n.s STARTS WITH 'a' AND n.s CONTAINS 'b' RETURN n",
        "MATCH (n) WHERE n.lang IN ['en', 'de'] OR n.lang IS NULL RETURN n",
        "MATCH (n) WHERE n:Post RETURN n",
        // Variable-length paths (the paper's headline feature).
        "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t",
        "MATCH (a)-[:R*2..4]->(b) RETURN a, b",
        "MATCH (a)-[:R*0..]->(b) RETURN a, b",
        // Path unwinding (explicitly preserved by the paper).
        "MATCH t = (a)-[:R*]->(b) UNWIND nodes(t) AS n RETURN n",
        "MATCH t = (a)-[:R*]->(b) UNWIND relationships(t) AS e RETURN e",
        // DISTINCT (bags → sets is fine; only ordering is excluded).
        "MATCH (p:Post) RETURN DISTINCT p.lang",
        // Aggregation (the implemented future-work extension).
        "MATCH (p:Post) RETURN p.lang AS l, count(*) AS n",
        "MATCH (p:Post) RETURN min(p.len), max(p.len), sum(p.len), avg(p.len)",
        "MATCH (p:Post) RETURN collect(p.lang)",
        // Expressions (also listed as future work; implemented).
        "MATCH (n) WHERE n.x + 2 * n.y = 7 RETURN n.x ^ 2 AS sq",
        // Functions on paths and values.
        "MATCH t = (a)-[:R*]->(b) RETURN length(t), nodes(t)",
        // WITH (implemented extension): projection, HAVING, chaining.
        "MATCH (p:Post) WITH p.lang AS lang, count(*) AS n WHERE n > 1 RETURN lang",
        "MATCH (a) WITH a AS x MATCH (x)-[:R]->(b) RETURN b",
        // Negation (implemented extension).
        "MATCH (p:Post) WHERE NOT exists((p)-[:REPLY]->(:Comm)) RETURN p",
    ];
    for q in inside {
        match verdict(q) {
            Ok(reasons) => assert!(reasons.is_empty(), "{q}: {reasons:?}"),
            Err(e) => panic!("{q}: unexpected rejection {e}"),
        }
    }
}

#[test]
fn ordering_constructs_are_not_maintainable() {
    // The paper's trade-off: no ORD beyond atomic paths → no ORDER BY,
    // no SKIP, no LIMIT (top-k).
    for (q, needle) in [
        (
            "MATCH (p:Post) RETURN p.len AS len ORDER BY len",
            "ORDER BY",
        ),
        ("MATCH (p:Post) RETURN p.len AS len SKIP 2", "SKIP"),
        ("MATCH (p:Post) RETURN p.len AS len LIMIT 3", "LIMIT"),
    ] {
        let reasons = verdict(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        assert!(
            reasons.iter().any(|r| r.contains(needle)),
            "{q}: {reasons:?}"
        );
    }
}

#[test]
fn future_work_constructs_are_unsupported() {
    // Constructs the paper explicitly defers and we have not implemented:
    // OPTIONAL MATCH and parameters. (WITH, aggregation and negation are
    // implemented as extensions — see the accepted list above.)
    for q in [
        "MATCH (a) OPTIONAL MATCH (a)-[:R]->(b) RETURN a, b",
        "MATCH (n) WHERE n.lang = $lang RETURN n",
    ] {
        assert!(
            matches!(verdict(q), Err(AlgebraError::Unsupported(_))),
            "{q} should be Unsupported"
        );
    }
}

#[test]
fn semantic_errors_are_invalid_queries() {
    {
        let q = "MATCH t = (a)-[:R*]->(b) WHERE t.x = 1 RETURN t";
        assert!(
            matches!(verdict(q), Err(AlgebraError::InvalidQuery(_))),
            "{q} should be InvalidQuery"
        );
    }
    // Aggregates mixed into scalar expressions are rejected as
    // unsupported (project the aggregate alone instead).
    assert!(matches!(
        verdict("MATCH (n) RETURN count(*) + 1"),
        Err(AlgebraError::Unsupported(_))
    ));
    assert!(matches!(
        verdict("MATCH (n) WHERE x.y = 1 RETURN n"),
        Err(AlgebraError::UnknownVariable(_))
    ));
}

#[test]
fn nested_label_predicates_are_not_maintainable() {
    // `n:Label` under OR cannot be rewritten to a join.
    let q = "MATCH (n) WHERE n:Post OR n.x = 1 RETURN n";
    assert!(matches!(verdict(q), Err(AlgebraError::NotMaintainable(_))));
}

#[test]
fn maintainability_reasons_accumulate() {
    let q = "MATCH (p:Post) RETURN p.len AS len ORDER BY len SKIP 1 LIMIT 2";
    let reasons = verdict(q).unwrap();
    assert_eq!(reasons.len(), 3, "{reasons:?}");
}
