//! Operation-indexed error-injection sweep for the durability layer
//! (CI's `durability-faults` legs).
//!
//! Where `durability_crash.rs` models a silent power cut (the byte
//! fuse), this file models a **live disk that reports failures**: EIO,
//! ENOSPC, short writes, failed fsyncs that also drop the unsynced
//! tail, and torn atomic renames. A reference run counts every
//! mutating disk operation the script attempts; the sweep then re-runs
//! the identical script once per (operation index, fault) pair with
//! that single operation failing, and asserts the graceful-degradation
//! contract:
//!
//! 1. **No panics, no aborts** — every fault surfaces as a typed
//!    `EngineError::Durability` / `EngineError::ReadOnly` or is
//!    absorbed (cadence snapshots, best-effort cleanup).
//! 2. **Failed commits roll back** — at most one commit is rejected
//!    per injected fault, the engine stays usable, and a restart
//!    recovers *exactly* the acknowledged commits (fsync-always with a
//!    one-commit flush window, so acked ⇒ durable).
//! 3. **Views stay exact** — the surviving view set is a
//!    registration-order prefix and every view matches a from-scratch
//!    recompute over the recovered graph.
//!
//! Separate tests pin down the failure breaker (repeated failures trip
//! read-only degraded mode; `reset_durability` heals it) and the
//! bounded-disk guarantee (compaction keeps live disk O(churn since
//! the last snapshot) across 50 snapshot cadences).

mod durability_script;

use std::sync::Arc;

use durability_script::{env_usize, graph_identity, run_script, RunMode, VIEWS};
use pgq_algebra::pipeline::compile_query;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_core::{EngineError, GraphEngine};
use pgq_durability::{Fault, MemDisk};
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_parser::parse_query;

#[test]
fn every_injected_fault_degrades_gracefully() {
    let iters = env_usize("PGQ_STRESS_ITERS", 2).max(1);
    let base_seed = env_usize("PGQ_STRESS_SEED", 0xFA_177) as u64;
    let threads = env_usize("PGQ_THREADS", 1);
    let compiled: Vec<_> = VIEWS
        .iter()
        .map(|(_, q)| compile_query(&parse_query(q).unwrap()).unwrap())
        .collect();

    for iter in 0..iters {
        let seed = base_seed
            .wrapping_add(iter as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);

        // Reference run: count the mutating disk operations (appends,
        // atomic renames, removes, syncs) the script attempts — the
        // index space the fault sweep fires in.
        let ref_disk = MemDisk::new();
        let _ = run_script(ref_disk.vfs(), seed, threads, RunMode::Faulty);
        let ops = ref_disk.ops_attempted();

        // Sweep every operation index (strided if the script got big)
        // crossed with every fault kind.
        let stride = (ops / 48).max(1);
        let mut points: Vec<u64> = (0..ops).step_by(stride as usize).collect();
        for edge in [0, 1, ops.saturating_sub(1)] {
            if !points.contains(&edge) {
                points.push(edge);
            }
        }

        let mut runs = 0usize;
        for fault in Fault::ALL {
            for &op in &points {
                runs += 1;
                let disk = MemDisk::new();
                let run = run_script(
                    disk.vfs_with_fault(op, fault),
                    seed,
                    threads,
                    RunMode::Faulty,
                );

                // 2. Graceful degradation: one fault rejects at most
                //    one commit and never trips the breaker.
                assert!(
                    run.rejected <= 1,
                    "seed={seed:#x} op={op} {fault:?}: {} commits rejected by one fault",
                    run.rejected
                );
                assert!(
                    !run.degraded,
                    "seed={seed:#x} op={op} {fault:?}: single fault tripped degraded mode"
                );

                // Acked ⇒ durable: a restart recovers exactly the
                // acknowledged commits, nothing more, nothing less.
                let mut shadow = PropertyGraph::new();
                for tx in &run.committed {
                    shadow.apply(tx).unwrap();
                }
                let recovered = GraphEngine::open_durable_with(Arc::new(disk.vfs()))
                    .unwrap_or_else(|e| {
                        panic!("seed={seed:#x} op={op} {fault:?}: recovery failed: {e}")
                    });
                assert_eq!(
                    graph_identity(recovered.graph()),
                    graph_identity(&shadow),
                    "seed={seed:#x} op={op} {fault:?}: recovered state is not exactly the \
                     acknowledged commits ({} acked, {} rejected)",
                    run.committed.len(),
                    run.rejected,
                );

                // 3. The surviving views are a registration prefix and
                //    every one matches recompute.
                for (i, ((name, _), plan)) in VIEWS.iter().zip(&compiled).enumerate() {
                    let id = recovered.view_by_name(name);
                    assert_eq!(
                        id.is_some(),
                        i < run.registered,
                        "seed={seed:#x} op={op} {fault:?}: view {name} presence diverged \
                         from registration outcome ({} registered)",
                        run.registered,
                    );
                    let Some(id) = id else { continue };
                    assert_eq!(
                        recovered.view(id).unwrap().results(),
                        pgq_eval::evaluate_consolidated(&plan.fra, recovered.graph()),
                        "seed={seed:#x} op={op} {fault:?}: view {name} diverged from recompute"
                    );
                }
            }
        }
        eprintln!(
            "fault sweep iter {iter}: seed={seed:#x} ok ({runs} fault points over {ops} ops, width {threads})"
        );
    }
}

fn one_vertex_tx(tag: i64) -> Transaction {
    let mut tx = Transaction::new();
    tx.create_vertex(
        [Symbol::intern("Post")],
        Properties::from_iter([("tag", Value::Int(tag))]),
    );
    tx
}

#[test]
fn repeated_failures_trip_the_breaker_and_reset_heals_it() {
    let disk = MemDisk::new();
    // Each failed append consumes two ops (the faulted append + the
    // repair rewrite), so three consecutive failures land on ops
    // o, o+2, o+4.
    let mut engine = GraphEngine::open_durable_with(Arc::new(disk.vfs_with_faults(vec![
        (2, Fault::Eio),
        (4, Fault::Enospc),
        (6, Fault::Eio),
    ])))
    .unwrap();
    engine.set_snapshot_every(0); // appends are the only disk ops
    engine.apply(&one_vertex_tx(0)).unwrap(); // op 0
    engine.apply(&one_vertex_tx(1)).unwrap(); // op 1

    // Three consecutive failed commits: each one is rolled back and
    // reported typed; the third trips the breaker.
    for (i, expect_degraded) in [(2i64, false), (3, false), (4, true)] {
        let err = engine.apply(&one_vertex_tx(i)).unwrap_err();
        assert!(
            matches!(err, EngineError::Durability(_)),
            "failure {i} surfaced as {err:?}"
        );
        assert_eq!(
            engine.is_degraded(),
            expect_degraded,
            "breaker state after failure {i}"
        );
    }
    let health = engine.durability_health().unwrap();
    assert_eq!(health.fail_streak, 3);
    assert!(health.degraded.is_some());

    // Degraded mode: updates are refused with a typed error that names
    // the original failure; reads still work; nothing panics.
    let err = engine.apply(&one_vertex_tx(9)).unwrap_err();
    assert!(matches!(err, EngineError::ReadOnly(_)), "got {err:?}");
    assert_eq!(engine.graph().vertex_count(), 2, "failed commits leaked");

    // Operator fixes the disk (our fault plan is exhausted) and resets:
    // the engine re-baselines via a generation switchover and accepts
    // writes again.
    engine.reset_durability().unwrap();
    assert!(!engine.is_degraded());
    engine.apply(&one_vertex_tx(5)).unwrap();
    drop(engine);

    // A restart sees exactly the acknowledged commits.
    let recovered = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
    assert_eq!(recovered.graph().vertex_count(), 3);
    assert!(!recovered.is_degraded());
}

#[test]
fn reset_fails_typed_while_the_disk_is_still_broken() {
    let disk = MemDisk::new();
    let mut engine = GraphEngine::open_durable_with(Arc::new(disk.vfs_with_faults(vec![
        (1, Fault::Enospc), // the commit append
        (3, Fault::Enospc), // the reset's switchover snapshot
    ])))
    .unwrap();
    engine.set_snapshot_every(0);
    engine.set_max_durability_failures(1);
    engine.apply(&one_vertex_tx(0)).unwrap(); // op 0

    let err = engine.apply(&one_vertex_tx(1)).unwrap_err(); // ops 1 (fault) + 2 (repair)
    assert!(matches!(err, EngineError::Durability(_)), "got {err:?}");
    assert!(engine.is_degraded(), "max_failures=1 must trip immediately");

    // The disk is still refusing writes: reset reports it and stays
    // degraded instead of pretending to heal.
    let err = engine.reset_durability().unwrap_err();
    assert!(matches!(err, EngineError::Durability(_)), "got {err:?}");
    assert!(engine.is_degraded());

    // Now the plan is exhausted (disk healthy): reset succeeds.
    engine.reset_durability().unwrap();
    assert!(!engine.is_degraded());
    engine.apply(&one_vertex_tx(2)).unwrap();

    let recovered = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
    assert_eq!(recovered.graph().vertex_count(), 2);
}

#[test]
fn compaction_bounds_disk_over_long_churn() {
    // 50 snapshot cadences of steady churn. With generation-switching
    // compaction the live files are one snapshot plus at most one
    // cadence of log; without it the WAL grows with total history.
    const CADENCES: usize = 50;
    const EVERY: u64 = 2;

    let run = |compact: bool| -> (usize, usize) {
        let disk = MemDisk::new();
        let mut engine = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
        engine.set_snapshot_every(EVERY);
        engine.set_wal_compact(compact);
        let mut max_live = 0usize;
        for i in 0..(CADENCES * EVERY as usize) {
            engine.apply(&one_vertex_tx(i as i64 % 7)).unwrap();
            // Churn, not growth: immediately delete what we added so
            // the reachable state stays tiny while history accumulates.
            let v = {
                let mut ids: Vec<_> = engine.graph().vertex_ids().collect();
                ids.sort_unstable();
                *ids.last().unwrap()
            };
            let mut del = Transaction::new();
            del.delete_vertex(v, true);
            engine.apply(&del).unwrap();
            max_live = max_live.max(disk.total_len());
        }
        (max_live, disk.total_len())
    };

    let (compact_max, compact_final) = run(true);
    let (_, pinned_final) = run(false);

    assert!(
        compact_max * 4 < pinned_final,
        "compaction did not bound the disk: peak {compact_max} bytes live vs \
         {pinned_final} bytes of pinned-generation history"
    );
    assert!(
        compact_final <= compact_max,
        "final compacted footprint {compact_final} exceeded its own peak {compact_max}"
    );
}
