//! The antijoin extension: `[NOT] exists(pattern)` in WHERE — beyond the
//! paper's fragment (which defers negation together with OPTIONAL
//! MATCH), maintained incrementally with counting support (the Rete
//! "negative node").

use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_workloads::railway::{generate_railway, queries as rq, RailwayParams};

#[test]
fn exists_and_not_exists_basic() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:P {x: 1})-[:R]->(:Q)").unwrap();
    e.execute("CREATE (:P {x: 2})").unwrap();

    let with = e
        .query("MATCH (p:P) WHERE exists((p)-[:R]->(:Q)) RETURN p.x")
        .unwrap();
    assert_eq!(with.rows.len(), 1);
    assert_eq!(with.rows[0].get(0).as_int(), Some(1));

    let without = e
        .query("MATCH (p:P) WHERE NOT exists((p)-[:R]->(:Q)) RETURN p.x")
        .unwrap();
    assert_eq!(without.rows.len(), 1);
    assert_eq!(without.rows[0].get(0).as_int(), Some(2));
}

#[test]
fn antijoin_view_is_maintained_incrementally() {
    let mut e = GraphEngine::new();
    let view = e
        .register_view(
            "orphans",
            "MATCH (p:P) WHERE NOT exists((p)-[:R]->(:Q)) RETURN p",
        )
        .unwrap();
    e.execute("CREATE (:P {x: 1})").unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 1);

    // Adding the witness retracts the row...
    e.execute("MATCH (p:P) CREATE (p)-[:R]->(:Q)").unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 0);

    // ...and deleting the witness edge brings it back.
    e.execute("MATCH (p:P)-[r:R]->(q:Q) DELETE r").unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 1);
}

#[test]
fn multiple_witnesses_counted_correctly() {
    let mut e = GraphEngine::new();
    let view = e
        .register_view(
            "unmonitored",
            "MATCH (s:Switch) WHERE NOT exists((s)-[:monitoredBy]->(:Sensor)) RETURN s",
        )
        .unwrap();
    e.execute("CREATE (:Switch)").unwrap();
    e.execute("MATCH (s:Switch) CREATE (s)-[:monitoredBy]->(:Sensor)")
        .unwrap();
    e.execute("MATCH (s:Switch) CREATE (s)-[:monitoredBy]->(:Sensor)")
        .unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 0);
    // Removing ONE of two witnesses must not resurrect the violation.
    let edge = e.graph().edge_ids().next().unwrap();
    let mut tx = pgq_graph::tx::Transaction::new();
    tx.delete_edge(edge);
    e.apply(&tx).unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 0);
    // Removing the second one does.
    let edge = e.graph().edge_ids().next().unwrap();
    let mut tx = pgq_graph::tx::Transaction::new();
    tx.delete_edge(edge);
    e.apply(&tx).unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 1);
}

#[test]
fn semijoin_label_constraint_participates() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:P {x: 1})-[:R]->(:Q)").unwrap();
    e.execute("CREATE (:P {x: 2})-[:R]->(:NotQ)").unwrap();
    let r = e
        .query("MATCH (p:P) WHERE exists((p)-[:R]->(:Q)) RETURN p.x")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(0).as_int(), Some(1));
}

#[test]
fn exists_with_literal_props() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:P {x: 1})-[:R {w: 1}]->(:Q)").unwrap();
    e.execute("CREATE (:P {x: 2})-[:R {w: 9}]->(:Q)").unwrap();
    let r = e
        .query("MATCH (p:P) WHERE exists((p)-[:R {w: 1}]->(:Q)) RETURN p.x")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(0).as_int(), Some(1));
}

#[test]
fn non_literal_subpattern_props_rejected() {
    let e = GraphEngine::new();
    let err = e
        .query("MATCH (p:P) WHERE exists((p)-[:R {w: p.x}]->(:Q)) RETURN p")
        .unwrap_err();
    assert!(matches!(
        err,
        pgq_core::EngineError::Algebra(pgq_algebra::AlgebraError::Unsupported(_))
    ));
}

#[test]
fn nested_exists_rejected_as_not_maintainable() {
    let e = GraphEngine::new();
    let err = e
        .query("MATCH (p:P) WHERE exists((p)-[:R]->()) OR p.x = 1 RETURN p")
        .unwrap_err();
    assert!(matches!(
        err,
        pgq_core::EngineError::Algebra(pgq_algebra::AlgebraError::NotMaintainable(_))
    ));
}

#[test]
fn train_benchmark_negative_queries_end_to_end() {
    // The original RouteSensor / SwitchMonitored (negative) queries on a
    // generated railway, maintained under the fault stream and checked
    // against recompute after every transaction batch.
    let mut rw = generate_railway(RailwayParams::size(3, 13));
    let stream = rw.fault_stream(60);

    let mut engine = GraphEngine::from_graph(rw.graph.clone());
    let rs = engine
        .register_view("RouteSensorNeg", rq::ROUTE_SENSOR_NEG)
        .unwrap();
    let sm = engine
        .register_view("SwitchMonitoredNeg", rq::SWITCH_MONITORED_NEG)
        .unwrap();
    // The generator wires ~90% of requires edges, so some violations
    // exist from the start.
    assert!(engine.view(rs).unwrap().row_count() > 0);

    for tx in &stream {
        engine.apply(tx).unwrap();
    }
    for id in [rs, sm] {
        let compiled = engine.view_compiled(id).unwrap();
        let want = evaluate_consolidated(&compiled.fra, engine.graph());
        assert_eq!(engine.view(id).unwrap().results(), want);
    }
}

#[test]
fn semijoin_preserves_left_multiplicity() {
    let mut e = GraphEngine::new();
    // Two parallel edges a→b: the pattern (a)-[:R]->(b) matches twice,
    // but exists() must keep each left row exactly once.
    e.execute("CREATE (:A {x: 1})-[:R]->(:B)").unwrap();
    e.execute("MATCH (a:A) MATCH (b:B) CREATE (a)-[:R]->(b)")
        .unwrap();
    let r = e
        .query("MATCH (a:A) WHERE exists((a)-[:R]->(:B)) RETURN a.x")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}
