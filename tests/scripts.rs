//! Multi-statement scripts through `GraphEngine::execute_script`.

use pgq_core::GraphEngine;

#[test]
fn script_runs_statements_in_order() {
    let mut e = GraphEngine::new();
    let results = e
        .execute_script(
            "CREATE (:Post {lang: 'en'});\n\
             CREATE (:Post {lang: 'de'});\n\
             MATCH (p:Post {lang: 'en'}) CREATE (p)-[:REPLY]->(:Comm {lang: 'en'});\n\
             MATCH (p:Post)-[:REPLY]->(c) RETURN p, c;",
        )
        .unwrap();
    assert_eq!(results.len(), 4);
    assert_eq!(results[0].stats.nodes_created, 1);
    assert_eq!(results[3].rows.len(), 1);
}

#[test]
fn stray_semicolons_are_tolerated() {
    let mut e = GraphEngine::new();
    let results = e.execute_script(";;CREATE (:A);; ;CREATE (:B);").unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(e.graph().vertex_count(), 2);
}

#[test]
fn parse_error_executes_nothing() {
    let mut e = GraphEngine::new();
    // The script is parsed up-front: a syntax error anywhere means no
    // statement runs at all.
    let err = e
        .execute_script("CREATE (:A); MATCH (a:A) DELETE a b; CREATE (:C)")
        .unwrap_err();
    assert!(matches!(err, pgq_core::EngineError::Parse(_)));
    assert_eq!(e.graph().vertex_count(), 0);
}

#[test]
fn runtime_error_keeps_prior_statements() {
    let mut e = GraphEngine::new();
    // Second statement fails at runtime (DELETE of a connected vertex
    // without DETACH); the first stays committed, the third never runs.
    let err = e
        .execute_script("CREATE (:A)-[:R]->(:B); MATCH (a:A) DELETE a; CREATE (:C)")
        .unwrap_err();
    assert!(matches!(err, pgq_core::EngineError::Graph(_)));
    assert_eq!(e.graph().vertex_count(), 2);
}

#[test]
fn views_follow_scripts() {
    let mut e = GraphEngine::new();
    let view = e.register_view("all", "MATCH (n) RETURN n").unwrap();
    e.execute_script("CREATE (:A); CREATE (:B); MATCH (a:A) DETACH DELETE a")
        .unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 1);
}
