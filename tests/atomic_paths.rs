//! The paper's *atomic path* model, exercised on its hardest cases:
//! named paths spanning mixed single-hop and variable-length segments
//! (internally: PathStart → PathExtend → PathConcat), maintained
//! incrementally and checked against recompute.

use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;

fn engine_with_chain() -> GraphEngine {
    let mut e = GraphEngine::new();
    // X -a-> M -b-> M -b-> M (a: single hop R; b: var-length S chain)
    e.execute_script(
        "CREATE (:X {id: 0})-[:R]->(:M {id: 1});\
         MATCH (m:M {id: 1}) CREATE (m)-[:S]->(:M {id: 2});\
         MATCH (m:M {id: 2}) CREATE (m)-[:S]->(:M {id: 3});",
    )
    .unwrap();
    e
}

#[test]
fn mixed_single_and_varlength_named_path() {
    let mut e = engine_with_chain();
    let view = e
        .register_view(
            "t",
            "MATCH t = (a:X)-[:R]->(b:M)-[:S*]->(c:M) RETURN t, length(t)",
        )
        .unwrap();
    let rows = e.view_results(view).unwrap();
    // Paths: X→1→2 (len 2) and X→1→2→3 (len 3).
    assert_eq!(rows.len(), 2);
    let mut lens: Vec<i64> = rows.iter().map(|r| r.get(1).as_int().unwrap()).collect();
    lens.sort_unstable();
    assert_eq!(lens, vec![2, 3]);
    // Every path starts at the X vertex.
    for r in &rows {
        let p = r.get(0).as_path().unwrap();
        assert_eq!(p.len() as i64, r.get(1).as_int().unwrap());
        assert_eq!(p.vertices().len(), p.edges().len() + 1);
    }
}

#[test]
fn zero_length_varlength_segment_in_named_path() {
    let mut e = engine_with_chain();
    let view = e
        .register_view("t0", "MATCH t = (a:X)-[:R]->(b:M)-[:S*0..]->(c:M) RETURN t")
        .unwrap();
    // Zero-hop: X→1 itself; plus the two longer ones.
    assert_eq!(e.view_results(view).unwrap().len(), 3);
}

#[test]
fn path_updates_maintain_mixed_paths() {
    let mut e = engine_with_chain();
    let view = e
        .register_view("t", "MATCH t = (a:X)-[:R]->(b:M)-[:S*]->(c:M) RETURN t")
        .unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 2);

    // Extend the S-chain: one more path appears.
    e.execute("MATCH (m:M {id: 3}) CREATE (m)-[:S]->(:M {id: 4})")
        .unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 3);

    // Cut the single-hop R edge: every path dies atomically.
    e.execute("MATCH (:X)-[r:R]->() DELETE r").unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 0);

    // Differential check after the churn.
    let compiled = e.view_compiled(view).unwrap();
    assert_eq!(
        e.view(view).unwrap().results(),
        evaluate_consolidated(&compiled.fra, e.graph())
    );
}

#[test]
fn two_varlength_segments_in_one_named_path() {
    let mut e = GraphEngine::new();
    e.execute_script(
        "CREATE (:X {id: 0})-[:S]->(:M {id: 1});\
         MATCH (m:M {id: 1}) CREATE (m)-[:T]->(:N {id: 2});\
         MATCH (n:N {id: 2}) CREATE (n)-[:T]->(:N {id: 3});",
    )
    .unwrap();
    let view = e
        .register_view(
            "tt",
            "MATCH t = (a:X)-[:S*]->(b:M)-[:T*]->(c:N) RETURN t, length(t)",
        )
        .unwrap();
    let rows = e.view_results(view).unwrap();
    // S-paths: X→1; T-paths from 1: 1→2, 1→2→3 ⇒ two combined paths.
    assert_eq!(rows.len(), 2);
    let compiled = e.view_compiled(view).unwrap();
    assert_eq!(
        e.view(view).unwrap().results(),
        evaluate_consolidated(&compiled.fra, e.graph())
    );
}

#[test]
fn named_path_of_single_node() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:X {id: 7})").unwrap();
    let r = e.query("MATCH t = (a:X) RETURN t, length(t)").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(1).as_int(), Some(0));
    let p = r.rows[0].get(0).as_path().unwrap();
    assert!(p.is_empty());
}

#[test]
fn relationships_list_alias_on_varlength() {
    let e = engine_with_chain();
    let r = e
        .query("MATCH (b:M {id: 1})-[es:S*]->(c:M) RETURN size(es), c.id")
        .unwrap();
    // 1→2 (1 edge) and 1→2→3 (2 edges).
    let mut pairs: Vec<(i64, i64)> = r
        .rows
        .iter()
        .map(|row| (row.get(0).as_int().unwrap(), row.get(1).as_int().unwrap()))
        .collect();
    pairs.sort_unstable();
    assert_eq!(pairs, vec![(1, 2), (2, 3)]);
}
