//! Shared harness for the durability crash/fault sweeps: a seeded
//! random update script over three standing views (join, aggregate,
//! variable-length path), run against an in-memory disk in one of
//! three modes — strict (any engine error is a test bug), pinned
//! generation (compaction off), or faulty (typed durability errors are
//! expected and tolerated; fsync-always with a one-commit flush window
//! so every acknowledged commit is individually durable).

// Each test crate uses a different slice of this module.
#![allow(dead_code)]

use std::sync::Arc;

use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_core::{EngineError, GraphEngine};
use pgq_durability::{FsyncMode, MemVfs, Snapshot};
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;

const LANGS: &[&str] = &["en", "de", "fr"];
pub const TXS_PER_SCRIPT: usize = 16;

/// The standing views every crash must preserve: a filtered join, an
/// aggregate, and a variable-length path (the three operator-state
/// shapes — join memories, group table, path store).
pub const VIEWS: &[(&str, &str)] = &[
    (
        "same_lang",
        "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    ),
    (
        "by_lang",
        "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    ),
    (
        "threads",
        "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t",
    ),
];

pub struct XorShift(u64);

impl XorShift {
    pub fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

/// One random single-op transaction against the current graph.
pub fn random_tx(rng: &mut XorShift, g: &PropertyGraph) -> Transaction {
    let vertices: Vec<_> = {
        let mut v: Vec<_> = g.vertex_ids().collect();
        v.sort_unstable();
        v
    };
    let edges: Vec<_> = {
        let mut e: Vec<_> = g.edge_ids().collect();
        e.sort_unstable();
        e
    };
    let mut tx = Transaction::new();
    match rng.below(6) {
        0 | 1 => {
            tx.create_vertex(
                [s("Post")],
                Properties::from_iter([("lang", Value::str(LANGS[rng.below(LANGS.len())]))]),
            );
        }
        2 if !vertices.is_empty() => {
            let p = vertices[rng.below(vertices.len())];
            let c = tx.create_vertex(
                [s("Comm")],
                Properties::from_iter([("lang", Value::str(LANGS[rng.below(LANGS.len())]))]),
            );
            tx.create_edge(p, c, s("REPLY"), Properties::new());
        }
        3 if !vertices.is_empty() => {
            tx.set_vertex_prop(
                vertices[rng.below(vertices.len())],
                s("lang"),
                Value::str(LANGS[rng.below(LANGS.len())]),
            );
        }
        4 if !edges.is_empty() => {
            tx.delete_edge(edges[rng.below(edges.len())]);
        }
        5 if !vertices.is_empty() => {
            tx.delete_vertex(vertices[rng.below(vertices.len())], true);
        }
        _ => {
            tx.create_vertex([s("Post")], Properties::new());
        }
    }
    tx
}

/// Content identity of a graph: the deterministic sorted dump (ids,
/// labels, properties, endpoints) rendered to one string.
pub fn graph_identity(g: &PropertyGraph) -> String {
    let snap = Snapshot::capture_graph(g);
    format!("{:?} {:?}", snap.vertices, snap.edges)
}

/// How a script run treats the engine.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Crash model (byte fuse or no fault at all): the engine must
    /// never observe an error — any `Err` fails the test.
    Strict,
    /// [`RunMode::Strict`] with generation-switching compaction turned
    /// off (PR 9 pinned-generation semantics).
    NoCompact,
    /// Live-disk error model: typed durability errors are expected.
    /// Runs fsync-always with a one-commit flush window; failed
    /// registrations stop further registrations (so the surviving view
    /// set stays a registration prefix) and failed commits are counted
    /// in [`Run::rejected`].
    Faulty,
}

/// What a script run produced.
pub struct Run {
    /// Transactions the engine acknowledged, in commit order.
    pub committed: Vec<Transaction>,
    /// Views successfully registered (a prefix of [`VIEWS`]).
    pub registered: usize,
    /// Commits the engine rejected with a typed durability error.
    pub rejected: usize,
    /// Was the engine in read-only degraded mode when the run ended?
    pub degraded: bool,
}

/// Run the seeded script against `vfs`. Panics on any engine error in
/// the strict modes; tolerates typed durability errors in
/// [`RunMode::Faulty`].
pub fn run_script(vfs: MemVfs, seed: u64, threads: usize, mode: RunMode) -> Run {
    let mut engine = GraphEngine::open_durable_with(Arc::new(vfs))
        .unwrap_or_else(|e| panic!("seed={seed:#x}: open failed: {e}"));
    engine.set_threads(threads);
    engine.set_snapshot_every(5);
    match mode {
        RunMode::Strict => {}
        RunMode::NoCompact => {
            engine.set_wal_compact(false);
        }
        RunMode::Faulty => {
            engine.set_fsync(FsyncMode::Always);
            engine.set_flush_window(1);
        }
    }
    let mut registered = 0;
    for (name, q) in VIEWS {
        match engine.register_view(name, q) {
            Ok(_) => registered += 1,
            Err(EngineError::Durability(_) | EngineError::ReadOnly(_))
                if mode == RunMode::Faulty =>
            {
                break;
            }
            Err(e) => panic!("seed={seed:#x}: register {name} failed: {e}"),
        }
    }
    let mut rng = XorShift::new(seed);
    let mut committed = Vec::with_capacity(TXS_PER_SCRIPT);
    let mut rejected = 0;
    for t in 0..TXS_PER_SCRIPT {
        let tx = random_tx(&mut rng, engine.graph());
        match engine.apply(&tx) {
            Ok(_) => committed.push(tx),
            Err(EngineError::Durability(_) | EngineError::ReadOnly(_))
                if mode == RunMode::Faulty =>
            {
                rejected += 1;
            }
            Err(e) => panic!("seed={seed:#x} tx {t}: apply failed: {e}"),
        }
    }
    Run {
        committed,
        registered,
        rejected,
        degraded: engine.is_degraded(),
    }
}
