//! Workspace smoke test: the `pgq::prelude` quickstart from the crate-level
//! docs must keep working end-to-end (CREATE → register_view →
//! view_results), and incremental maintenance must kick in on later writes.
//! This mirrors the doc example in `src/lib.rs` so a regression shows up in
//! `cargo test` even when doctests are skipped.

use pgq::prelude::*;

#[test]
fn quickstart_create_register_view_results() {
    let mut engine = GraphEngine::new();
    engine
        .execute("CREATE (:Post {lang: 'en', id: 1})")
        .unwrap();
    let view = engine
        .register_view("posts", "MATCH (p:Post) RETURN p.lang")
        .unwrap();
    let rows = engine.view_results(view).unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn quickstart_view_is_incrementally_maintained() {
    let mut engine = GraphEngine::new();
    engine
        .execute("CREATE (:Post {lang: 'en', id: 1})")
        .unwrap();
    let view = engine
        .register_view("posts", "MATCH (p:Post) RETURN p.lang")
        .unwrap();
    assert_eq!(engine.view_results(view).unwrap().len(), 1);

    // Writes after registration must flow into the view without a rebuild.
    engine
        .execute("CREATE (:Post {lang: 'de', id: 2})")
        .unwrap();
    engine
        .execute("CREATE (:Comm {lang: 'de', id: 3})")
        .unwrap();
    let rows = engine.view_results(view).unwrap();
    assert_eq!(rows.len(), 2, "only the two Posts belong in the view");
}

#[test]
fn umbrella_reexports_are_wired() {
    // Each layer is reachable through the umbrella crate.
    let q = pgq::parser::parse_query("MATCH (p:Post) RETURN p").unwrap();
    let compiled = pgq::algebra::pipeline::compile_query(&q).unwrap();
    let g = PropertyGraph::new();
    let rows = pgq::eval::evaluate_consolidated(&compiled.fra, &g);
    assert!(rows.is_empty());

    let mut tx = Transaction::new();
    tx.create_vertex(
        [pgq::common::intern::Symbol::intern("Post")],
        pgq::graph::props::Properties::new(),
    );
    let mut g = PropertyGraph::new();
    g.apply(&tx).unwrap();
    assert_eq!(pgq::eval::evaluate_consolidated(&compiled.fra, &g).len(), 1);
}
