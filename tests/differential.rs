//! Differential testing: after ANY sequence of updates, an incrementally
//! maintained view must equal a from-scratch evaluation of the same FRA
//! plan. This is the central correctness property of the whole system —
//! the IVM engine and the baseline evaluator act as mutual oracles.

use pgq_algebra::pipeline::compile_query;
use pgq_common::fxhash::FxHashMap;
use pgq_common::intern::Symbol;
use pgq_common::tuple::Tuple;
use pgq_common::value::Value;
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_ivm::MaterializedView;
use pgq_parser::parse_query;
use proptest::prelude::*;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

const QUERIES: &[&str] = &[
    "MATCH (p:Post) RETURN p",
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p, p.lang",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
    "MATCH (a)-[:REPLY*1..3]->(b:Comm) RETURN a, b",
    "MATCH (p:Post) RETURN DISTINCT p.lang",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN n",
    "MATCH (a:Comm)<-[:REPLY]-(b) RETURN a, b",
    "MATCH (a)-[:REPLY]-(b:Comm) RETURN a, b",
    "MATCH (p:Post) WHERE NOT exists((p)-[:REPLY]->(:Comm)) RETURN p",
    "MATCH (p:Post) WHERE exists((p)-[:REPLY]->(:Comm {lang: 'en'})) RETURN p",
    // Property pushed from a *label-free* endpoint: routing must deliver
    // prop events for any vertex that can be `c` (regression guard for
    // the per-side endpoint-interest routing).
    "MATCH (p:Post)-[:REPLY]->(c) RETURN p, c.lang",
];

/// Alpha-renamed twins of [`QUERIES`] (same index order). The multi-view
/// oracle registers both lists on ONE engine: canonicalisation collapses
/// each twin onto its original's operator chain, and the collapse must
/// be observationally invisible — every twin equals a from-scratch
/// evaluation of its own compiled plan.
const RENAMED_QUERIES: &[&str] = &[
    "MATCH (q:Post) RETURN q",
    "MATCH (q:Post) WHERE q.lang = 'en' RETURN q, q.lang",
    "MATCH (q:Post)-[:REPLY]->(d:Comm) RETURN q, d",
    "MATCH (q:Post)-[:REPLY]->(d:Comm) WHERE q.lang = d.lang RETURN q, d",
    "MATCH u = (q:Post)-[:REPLY*]->(d:Comm) WHERE q.lang = d.lang RETURN q, u",
    "MATCH (x)-[:REPLY*1..3]->(y:Comm) RETURN x, y",
    "MATCH (q:Post) RETURN DISTINCT q.lang",
    "MATCH (q:Post) RETURN q.lang AS language, count(*) AS total",
    "MATCH u = (q:Post)-[:REPLY*]->(d:Comm) UNWIND nodes(u) AS m RETURN m",
    "MATCH (x:Comm)<-[:REPLY]-(y) RETURN x, y",
    "MATCH (x)-[:REPLY]-(y:Comm) RETURN x, y",
    "MATCH (q:Post) WHERE NOT exists((q)-[:REPLY]->(:Comm)) RETURN q",
    "MATCH (q:Post) WHERE exists((q)-[:REPLY]->(:Comm {lang: 'en'})) RETURN q",
    "MATCH (q:Post)-[:REPLY]->(d) RETURN q, d.lang",
];

/// One random update step, chosen against the current shadow graph.
#[derive(Clone, Debug)]
enum Step {
    AddPost { lang: usize },
    AddComment { parent: usize, lang: usize },
    AddReply { from: usize, to: usize },
    DeleteVertex { pick: usize },
    DeleteEdge { pick: usize },
    Retag { pick: usize, lang: usize },
    ToggleLabel { pick: usize },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..5usize).prop_map(|lang| Step::AddPost { lang }),
        (any::<usize>(), 0..5usize).prop_map(|(parent, lang)| Step::AddComment { parent, lang }),
        (any::<usize>(), any::<usize>()).prop_map(|(from, to)| Step::AddReply { from, to }),
        any::<usize>().prop_map(|pick| Step::DeleteVertex { pick }),
        any::<usize>().prop_map(|pick| Step::DeleteEdge { pick }),
        (any::<usize>(), 0..5usize).prop_map(|(pick, lang)| Step::Retag { pick, lang }),
        any::<usize>().prop_map(|pick| Step::ToggleLabel { pick }),
    ]
}

const LANGS: &[&str] = &["en", "de", "fr", "hu", "nl"];

fn apply_step(g: &mut PropertyGraph, step: &Step) -> Vec<pgq_graph::delta::ChangeEvent> {
    let tx = step_transaction(g, step);
    g.apply(&tx).expect("generated step applies")
}

/// Render one random step into a transaction against the current graph
/// state (shared by the single-view and multi-view oracles).
fn step_transaction(g: &PropertyGraph, step: &Step) -> Transaction {
    let vertices: Vec<_> = {
        let mut v: Vec<_> = g.vertex_ids().collect();
        v.sort_unstable();
        v
    };
    let edges: Vec<_> = {
        let mut e: Vec<_> = g.edge_ids().collect();
        e.sort_unstable();
        e
    };
    let mut tx = Transaction::new();
    match step {
        Step::AddPost { lang } => {
            tx.create_vertex(
                [s("Post")],
                Properties::from_iter([("lang", Value::str(LANGS[*lang]))]),
            );
        }
        Step::AddComment { parent, lang } if !vertices.is_empty() => {
            let p = vertices[parent % vertices.len()];
            let c = tx.create_vertex(
                [s("Comm")],
                Properties::from_iter([("lang", Value::str(LANGS[*lang]))]),
            );
            tx.create_edge(p, c, s("REPLY"), Properties::new());
        }
        Step::AddReply { from, to } if !vertices.is_empty() => {
            let a = vertices[from % vertices.len()];
            let b = vertices[to % vertices.len()];
            tx.create_edge(a, b, s("REPLY"), Properties::new());
        }
        Step::DeleteVertex { pick } if !vertices.is_empty() => {
            tx.delete_vertex(vertices[pick % vertices.len()], true);
        }
        Step::DeleteEdge { pick } if !edges.is_empty() => {
            tx.delete_edge(edges[pick % edges.len()]);
        }
        Step::Retag { pick, lang } if !vertices.is_empty() => {
            tx.set_vertex_prop(
                vertices[pick % vertices.len()],
                s("lang"),
                Value::str(LANGS[*lang]),
            );
        }
        Step::ToggleLabel { pick } if !vertices.is_empty() => {
            let v = vertices[pick % vertices.len()];
            let has = g.vertex(v).map(|d| d.has_label(s("Comm"))).unwrap_or(false);
            if has {
                tx.remove_label(v, s("Comm"));
            } else {
                tx.add_label(v, s("Comm"));
            }
        }
        _ => {}
    }
    tx
}

fn consolidated(view: &MaterializedView) -> Vec<(Tuple, i64)> {
    view.results()
}

fn eval_consolidated(fra: &pgq_algebra::Fra, g: &PropertyGraph) -> Vec<(Tuple, i64)> {
    pgq_eval::evaluate_consolidated(fra, g)
}

fn seed_graph() -> PropertyGraph {
    let (g, _) = pgq_workloads::paper_example_graph();
    g
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn view_equals_recompute_after_random_updates(
        steps in proptest::collection::vec(step_strategy(), 1..25),
        query_ix in 0..QUERIES.len(),
    ) {
        let query = QUERIES[query_ix];
        let compiled = compile_query(&parse_query(query).unwrap()).unwrap();
        let mut g = seed_graph();
        let mut view = MaterializedView::create("diff", &compiled, &g).unwrap();

        // Initial state must agree.
        prop_assert_eq!(consolidated(&view), eval_consolidated(&compiled.fra, &g));

        for step in &steps {
            let events = apply_step(&mut g, step);
            view.on_transaction(&g, &events);
            let got = consolidated(&view);
            let want = eval_consolidated(&compiled.fra, &g);
            prop_assert_eq!(
                got, want,
                "divergence after {:?} on query {}", step, query
            );
        }
    }

    /// Planner twins: every oracle query registered TWICE on one engine
    /// — once through the cost-based planner, once with the planner
    /// disabled (the syntactic order). After every random update both
    /// twins must equal a from-scratch evaluation: join reordering must
    /// be observationally invisible.
    #[test]
    fn planned_and_unplanned_twins_agree(
        steps in proptest::collection::vec(step_strategy(), 1..15),
    ) {
        let mut engine = pgq_core::GraphEngine::from_graph(seed_graph());
        let mut compiled_plans = Vec::new();
        for (i, query) in QUERIES.iter().enumerate() {
            let compiled = compile_query(&parse_query(query).unwrap()).unwrap();
            engine.register_view(&format!("pl{i}"), query).unwrap();
            engine.register_view_unplanned(&format!("un{i}"), query).unwrap();
            compiled_plans.push(compiled);
        }
        for step in &steps {
            let tx = step_transaction(engine.graph(), step);
            engine.apply(&tx).expect("generated step applies");
            for (i, compiled) in compiled_plans.iter().enumerate() {
                let want = eval_consolidated(&compiled.fra, engine.graph());
                for prefix in ["pl", "un"] {
                    let id = engine.view_by_name(&format!("{prefix}{i}")).unwrap();
                    prop_assert_eq!(
                        engine.view(id).unwrap().results(),
                        want.clone(),
                        "{} twin diverged after {:?} on query {}", prefix, step, QUERIES[i]
                    );
                }
            }
        }
    }

    /// The concurrent oracle: every oracle query on ONE engine, the
    /// same random update script replayed at propagation widths 1, 2,
    /// 4 and 8. The 1-thread engine is checked against from-scratch
    /// recomputation, and every wider engine must report results
    /// identical to the 1-thread run after every transaction — the
    /// determinism contract of the parallel pass.
    #[test]
    fn parallel_widths_agree_with_serial_and_recompute(
        steps in proptest::collection::vec(step_strategy(), 1..10),
    ) {
        const WIDTHS: &[usize] = &[1, 2, 4, 8];
        let mut template = pgq_core::GraphEngine::from_graph(seed_graph());
        let mut compiled_plans = Vec::new();
        for (i, query) in QUERIES.iter().enumerate() {
            let compiled = compile_query(&parse_query(query).unwrap()).unwrap();
            template.register_view(&format!("v{i}"), query).unwrap();
            compiled_plans.push(compiled);
        }
        let mut engines: Vec<_> = WIDTHS
            .iter()
            .map(|&w| {
                let mut e = template.clone();
                e.set_threads(w);
                e
            })
            .collect();
        for step in &steps {
            let tx = step_transaction(engines[0].graph(), step);
            for e in &mut engines {
                e.apply(&tx).expect("generated step applies");
            }
            for (i, compiled) in compiled_plans.iter().enumerate() {
                let name = format!("v{i}");
                let id = engines[0].view_by_name(&name).unwrap();
                let serial = engines[0].view(id).unwrap().results();
                prop_assert_eq!(
                    serial.clone(),
                    eval_consolidated(&compiled.fra, engines[0].graph()),
                    "serial engine diverged from recompute after {:?} on query {}",
                    step, QUERIES[i]
                );
                for (e, &w) in engines.iter().zip(WIDTHS).skip(1) {
                    let id = e.view_by_name(&name).unwrap();
                    prop_assert_eq!(
                        e.view(id).unwrap().results(),
                        serial.clone(),
                        "width {} diverged from serial after {:?} on query {}",
                        w, step, QUERIES[i]
                    );
                }
            }
        }
    }

    /// The batching oracle: the same transaction sequence applied one
    /// by one on one engine and through `apply_batch` on another must
    /// leave every view identical (and agreeing with recompute), with
    /// at most one propagation pass per transaction.
    #[test]
    fn apply_batch_matches_sequential_apply(
        steps in proptest::collection::vec(step_strategy(), 1..12),
    ) {
        let mut sequential = pgq_core::GraphEngine::from_graph(seed_graph());
        let mut compiled_plans = Vec::new();
        for (i, query) in QUERIES.iter().enumerate() {
            let compiled = compile_query(&parse_query(query).unwrap()).unwrap();
            sequential.register_view(&format!("v{i}"), query).unwrap();
            compiled_plans.push(compiled);
        }
        let mut batched = sequential.clone();
        // Render each step against the evolving graph (both engines see
        // identical states at every transaction boundary).
        let mut shadow = sequential.graph().clone();
        let mut txs = Vec::new();
        for step in &steps {
            let tx = step_transaction(&shadow, step);
            shadow.apply(&tx).expect("generated step applies");
            txs.push(tx);
        }
        for tx in &txs {
            sequential.apply(tx).expect("sequential apply");
        }
        let summary = batched.apply_batch(&txs).expect("batched apply");
        prop_assert_eq!(summary.transactions, txs.len());
        prop_assert!(summary.passes <= txs.len(), "passes bounded by transactions");
        for (i, compiled) in compiled_plans.iter().enumerate() {
            let name = format!("v{i}");
            let id = batched.view_by_name(&name).unwrap();
            let got = batched.view(id).unwrap().results();
            let sid = sequential.view_by_name(&name).unwrap();
            prop_assert_eq!(
                got.clone(),
                sequential.view(sid).unwrap().results(),
                "batched engine diverged from sequential on query {}", QUERIES[i]
            );
            prop_assert_eq!(
                got,
                eval_consolidated(&compiled.fra, batched.graph()),
                "batched engine diverged from recompute on query {}", QUERIES[i]
            );
        }
    }

    /// The multi-view variant: ALL oracle queries — plus an
    /// alpha-renamed twin of each — registered on ONE engine, served by
    /// the shared dataflow network (canonicalised hash-consed subplans,
    /// targeted routing, pooled deltas). Each twin collapses onto its
    /// original's nodes (zero new operators), and after every random
    /// update every view must equal a from-scratch evaluation — node
    /// sharing must be observationally invisible.
    #[test]
    fn multi_view_shared_network_equals_recompute(
        steps in proptest::collection::vec(step_strategy(), 1..15),
    ) {
        let mut engine = pgq_core::GraphEngine::from_graph(seed_graph());
        let mut compiled_plans = Vec::new();
        for (i, query) in QUERIES.iter().enumerate() {
            let compiled = compile_query(&parse_query(query).unwrap()).unwrap();
            engine.register_view(&format!("v{i}"), query).unwrap();
            compiled_plans.push(compiled);
        }
        // Renamed duplicates: canonicalisation must cons every one of
        // them onto the already-registered chains.
        let nodes_before_twins = engine.network_node_count();
        for (i, query) in RENAMED_QUERIES.iter().enumerate() {
            let compiled = compile_query(&parse_query(query).unwrap()).unwrap();
            engine.register_view(&format!("v{}", QUERIES.len() + i), query).unwrap();
            compiled_plans.push(compiled);
        }
        prop_assert_eq!(
            engine.network_node_count(),
            nodes_before_twins,
            "alpha-renamed twins must add zero operator nodes"
        );
        let all_queries: Vec<&str> = QUERIES.iter().chain(RENAMED_QUERIES).copied().collect();
        // Initial state must agree for every view.
        for (i, compiled) in compiled_plans.iter().enumerate() {
            let id = engine.view_by_name(&format!("v{i}")).unwrap();
            prop_assert_eq!(
                engine.view(id).unwrap().results(),
                eval_consolidated(&compiled.fra, engine.graph()),
                "initial divergence on query {}", all_queries[i]
            );
        }
        for step in &steps {
            let tx = step_transaction(engine.graph(), step);
            engine.apply(&tx).expect("generated step applies");
            for (i, compiled) in compiled_plans.iter().enumerate() {
                let id = engine.view_by_name(&format!("v{i}")).unwrap();
                prop_assert_eq!(
                    engine.view(id).unwrap().results(),
                    eval_consolidated(&compiled.fra, engine.graph()),
                    "multi-view divergence after {:?} on query {}", step, all_queries[i]
                );
            }
        }
    }
}

/// Deletion-heavy script through the borrowed-key join path: build a
/// dense Post→Comm reply fan-out, then tear most of it down edge by edge
/// and vertex by vertex, checking the maintained view against recompute
/// after every transaction. Exercises join-memory removals (bucket
/// drains, swap-removes) far harder than the random walk above.
#[test]
fn deletion_heavy_script_keeps_view_and_recompute_agreeing() {
    let queries = [
        "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
        "MATCH (p:Post) WHERE NOT exists((p)-[:REPLY]->(:Comm)) RETURN p",
    ];
    for query in queries {
        let compiled = compile_query(&parse_query(query).unwrap()).unwrap();
        let mut g = PropertyGraph::new();

        // 6 posts × 12 comments with shared languages → heavy key fan-out.
        for i in 0..6 {
            let mut tx = Transaction::new();
            tx.create_vertex(
                [s("Post")],
                Properties::from_iter([("lang", Value::str(LANGS[i % 3]))]),
            );
            g.apply(&tx).expect("post applies");
        }
        let posts: Vec<_> = {
            let mut v = g.vertices_with_label(s("Post")).to_vec();
            v.sort_unstable();
            v
        };
        for i in 0..12 {
            let mut tx = Transaction::new();
            let c = tx.create_vertex(
                [s("Comm")],
                Properties::from_iter([("lang", Value::str(LANGS[i % 3]))]),
            );
            for &p in &posts {
                tx.create_edge(p, c, s("REPLY"), Properties::new());
            }
            g.apply(&tx).expect("comment applies");
        }
        let comms: Vec<_> = {
            let mut v = g.vertices_with_label(s("Comm")).to_vec();
            v.sort_unstable();
            v
        };
        let edges: Vec<_> = {
            let mut e: Vec<_> = g.edge_ids().collect();
            e.sort_unstable();
            e
        };

        let mut view = MaterializedView::create("del", &compiled, &g).unwrap();
        assert_eq!(view.results(), eval_consolidated(&compiled.fra, &g));

        // Phase 1: delete two thirds of the edges one at a time.
        for (i, &e) in edges.iter().enumerate() {
            if i % 3 == 0 {
                continue;
            }
            let mut tx = Transaction::new();
            tx.delete_edge(e);
            let events = g.apply(&tx).expect("edge deletion applies");
            view.on_transaction(&g, &events);
            assert_eq!(
                view.results(),
                eval_consolidated(&compiled.fra, &g),
                "divergence deleting edge {i} under {query}"
            );
        }

        // Phase 2: delete every comment vertex (detaching remaining
        // edges), then half the posts.
        for &c in &comms {
            let mut tx = Transaction::new();
            tx.delete_vertex(c, true);
            let events = g.apply(&tx).expect("comment deletion applies");
            view.on_transaction(&g, &events);
            assert_eq!(view.results(), eval_consolidated(&compiled.fra, &g));
        }
        for &p in posts.iter().step_by(2) {
            let mut tx = Transaction::new();
            tx.delete_vertex(p, true);
            let events = g.apply(&tx).expect("post deletion applies");
            view.on_transaction(&g, &events);
            assert_eq!(view.results(), eval_consolidated(&compiled.fra, &g));
        }
        assert!(g.edge_count() == 0, "all edges should be gone");
    }
}

/// Skewed-workload planner oracle: on the hub fan-out graph the
/// cost-based planner provably reorders the join tree (the bench shows
/// a 10–100× gap), so this script drives both orders side by side
/// through hub churn and checks each against recompute after every
/// transaction.
#[test]
fn planner_reordered_views_stay_correct_under_hub_churn() {
    use pgq_workloads::hub::{generate_hub, queries as hq, HubParams};

    let mut net = generate_hub(HubParams::quick());
    let stream = net.update_stream(40);
    let mut engine = pgq_core::GraphEngine::from_graph(net.graph.clone());
    let queries = [hq::RARE_TOPIC_FANS, hq::RARE_CAT_FANS];
    let mut compiled = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        engine.register_view(&format!("pl{i}"), q).unwrap();
        engine
            .register_view_unplanned(&format!("un{i}"), q)
            .unwrap();
        compiled.push(compile_query(&parse_query(q).unwrap()).unwrap());
    }
    for (t, tx) in stream.iter().enumerate() {
        engine.apply(tx).expect("stream tx applies");
        for (i, c) in compiled.iter().enumerate() {
            let want = eval_consolidated(&c.fra, engine.graph());
            for prefix in ["pl", "un"] {
                let id = engine.view_by_name(&format!("{prefix}{i}")).unwrap();
                assert_eq!(
                    engine.view(id).unwrap().results(),
                    want,
                    "{prefix} twin diverged at tx {t} on {}",
                    queries[i]
                );
            }
        }
    }
}

/// One random step on the motif graph (edges only, plus fresh vertices):
/// the update language of the wcoj differential oracle. `CloseWedge`
/// deliberately completes triangles so the cyclic views keep changing.
#[derive(Clone, Debug)]
enum MotifStep {
    AddNode,
    AddEdge { from: usize, to: usize },
    CloseWedge { pick: usize },
    DeleteEdge { pick: usize },
}

fn motif_step_strategy() -> impl Strategy<Value = MotifStep> {
    prop_oneof![
        Just(MotifStep::AddNode),
        (any::<usize>(), any::<usize>()).prop_map(|(from, to)| MotifStep::AddEdge { from, to }),
        any::<usize>().prop_map(|pick| MotifStep::CloseWedge { pick }),
        any::<usize>().prop_map(|pick| MotifStep::DeleteEdge { pick }),
    ]
}

fn motif_step_transaction(g: &PropertyGraph, step: &MotifStep) -> Transaction {
    let vertices: Vec<_> = {
        let mut v: Vec<_> = g.vertex_ids().collect();
        v.sort_unstable();
        v
    };
    let edges: Vec<_> = {
        let mut e: Vec<_> = g.edge_ids().collect();
        e.sort_unstable();
        e
    };
    let mut tx = Transaction::new();
    match step {
        MotifStep::AddNode => {
            tx.create_vertex([s("N")], Properties::new());
        }
        MotifStep::AddEdge { from, to } if !vertices.is_empty() => {
            let a = vertices[from % vertices.len()];
            let b = vertices[to % vertices.len()];
            tx.create_edge(a, b, s("E"), Properties::new());
        }
        MotifStep::CloseWedge { pick } if !edges.is_empty() => {
            // Close a → b → c into a directed triangle with c → a.
            let e1 = edges[pick % edges.len()];
            let d1 = g.edge(e1).expect("listed edge exists");
            if let Some(&e2) = g.out_edges(d1.dst).first() {
                let c = g.edge(e2).expect("listed edge exists").dst;
                tx.create_edge(c, d1.src, s("E"), Properties::new());
            }
        }
        MotifStep::DeleteEdge { pick } if !edges.is_empty() => {
            tx.delete_edge(edges[pick % edges.len()]);
        }
        _ => {}
    }
    tx
}

/// Cyclic queries for the wcoj oracle: triangles, an alpha-renamed
/// triangle twin, and the four-cycle.
const MOTIF_QUERIES: &[&str] = &[
    pgq_workloads::motifs::queries::TRIANGLES,
    pgq_workloads::motifs::queries::TRIANGLES_RENAMED,
    pgq_workloads::motifs::queries::FOUR_CYCLES,
];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// The wcoj-vs-binary differential: every cyclic motif query
    /// registered THREE ways on one engine — fused ⨝ⁿ (`register_view`),
    /// binary join tree (`register_view_binary`) and syntactic order
    /// (`register_view_unplanned`) — then the same engine cloned at
    /// propagation width 4. After every random update (including edge
    /// deletions, which drive the n-ary retraction rule) all six
    /// variants of each query must equal a from-scratch evaluation.
    #[test]
    fn wcoj_and_binary_twins_agree_across_widths(
        steps in proptest::collection::vec(motif_step_strategy(), 1..18),
    ) {
        use pgq_workloads::motifs::{generate_motifs, MotifParams};
        let seed = generate_motifs(MotifParams {
            nodes: 12,
            edges: 30,
            tri_bias: 0.4,
            seed: 11,
        });
        let mut serial = pgq_core::GraphEngine::from_graph(seed.graph);
        let mut compiled_plans = Vec::new();
        for (i, query) in MOTIF_QUERIES.iter().enumerate() {
            serial.register_view(&format!("wc{i}"), query).unwrap();
            serial.register_view_binary(&format!("bi{i}"), query).unwrap();
            serial.register_view_unplanned(&format!("un{i}"), query).unwrap();
            compiled_plans.push(compile_query(&parse_query(query).unwrap()).unwrap());
        }
        let mut wide = serial.clone();
        wide.set_threads(4);
        for step in &steps {
            let tx = motif_step_transaction(serial.graph(), step);
            serial.apply(&tx).expect("generated step applies");
            wide.apply(&tx).expect("generated step applies");
            for (i, compiled) in compiled_plans.iter().enumerate() {
                let want = eval_consolidated(&compiled.fra, serial.graph());
                for prefix in ["wc", "bi", "un"] {
                    for (engine, width) in [(&serial, 1usize), (&wide, 4)] {
                        let id = engine.view_by_name(&format!("{prefix}{i}")).unwrap();
                        prop_assert_eq!(
                            engine.view(id).unwrap().results(),
                            want.clone(),
                            "{} twin at width {} diverged after {:?} on query {}",
                            prefix, width, step, MOTIF_QUERIES[i]
                        );
                    }
                }
            }
        }
    }
}

/// Deterministic motif-churn oracle: the shared generator's seeded
/// churn script (inserts with wedge-closing bias plus deletions) driven
/// through fused, binary and unplanned registrations of every cyclic
/// query, with an `apply_batch` engine replaying the whole script in
/// one call. The alpha-renamed triangle twin must hash-cons onto the
/// original's ⨝ⁿ node (zero new operators).
#[test]
fn wcoj_views_stay_correct_under_motif_churn() {
    use pgq_workloads::motifs::{generate_motifs, MotifParams};

    let mut net = generate_motifs(MotifParams::quick());
    let script = net.churn(60, 0.3);
    let mut engine = pgq_core::GraphEngine::from_graph(net.graph.clone());
    let mut compiled = Vec::new();
    for (i, q) in MOTIF_QUERIES.iter().enumerate() {
        engine.register_view(&format!("wc{i}"), q).unwrap();
        engine.register_view_binary(&format!("bi{i}"), q).unwrap();
        engine
            .register_view_unplanned(&format!("un{i}"), q)
            .unwrap();
        compiled.push(compile_query(&parse_query(q).unwrap()).unwrap());
    }
    // The renamed twin shares the triangle's fused node: re-registering
    // it under a fresh name must add zero operator nodes.
    let nodes_before = engine.network_node_count();
    engine
        .register_view(
            "tri_twin",
            pgq_workloads::motifs::queries::TRIANGLES_RENAMED,
        )
        .unwrap();
    assert_eq!(
        engine.network_node_count(),
        nodes_before,
        "alpha-renamed triangle twin must hash-cons onto the fused node"
    );
    let mut batched = engine.clone();
    for (t, tx) in script.iter().enumerate() {
        engine.apply(tx).expect("churn tx applies");
        if t % 5 != 0 && t + 1 != script.len() {
            continue;
        }
        for (i, c) in compiled.iter().enumerate() {
            let want = eval_consolidated(&c.fra, engine.graph());
            for prefix in ["wc", "bi", "un"] {
                let id = engine.view_by_name(&format!("{prefix}{i}")).unwrap();
                assert_eq!(
                    engine.view(id).unwrap().results(),
                    want,
                    "{prefix} twin diverged at tx {t} on {}",
                    MOTIF_QUERIES[i]
                );
            }
        }
    }
    // Whole script through apply_batch: identical consolidated output.
    batched.apply_batch(&script).expect("batched churn applies");
    for (i, query) in MOTIF_QUERIES.iter().enumerate() {
        for prefix in ["wc", "bi", "un"] {
            let name = format!("{prefix}{i}");
            let a = engine.view(engine.view_by_name(&name).unwrap()).unwrap();
            let b = batched.view(batched.view_by_name(&name).unwrap()).unwrap();
            assert_eq!(
                a.results(),
                b.results(),
                "apply_batch diverged on {name} ({query})"
            );
        }
    }
}

/// Hub-skewed wcoj oracle: the two-hub galloping workload (segregated
/// id ranges, hub-degree intersections, deletion-heavy churn centred on
/// the bridge edge) driven through every toggle combination in one
/// process — forced ⨝ⁿ on the sorted-run backend, forced ⨝ⁿ on the
/// hash-trie backend, binary join tree, and unplanned — each compared
/// against a from-scratch evaluation at every checkpoint. (The env-var
/// spellings of the same combinations, `PGQ_DISABLE_WCOJ` ×
/// `PGQ_WCOJ_SORTED`, are process-wide; the CI matrix re-runs this
/// whole suite under each of them.) The hub degree is scaled down from
/// the certified 10k so the binary twin's Θ(Σ deg²) wedge state stays
/// test-sized; the sorted/hash cursor machinery it exercises is
/// degree-independent.
#[test]
fn wcoj_hub_views_stay_correct_under_deletion_heavy_churn() {
    use pgq_workloads::motifs::{generate_hub_motifs, HubMotifParams};

    let mut net = generate_hub_motifs(HubMotifParams {
        spokes: 150,
        closers: 6,
        seed: 11,
    });
    let script = net.churn(60);
    let mut engine = pgq_core::GraphEngine::from_graph(net.graph.clone());
    let hub_queries = [
        pgq_workloads::motifs::queries::TRIANGLES,
        pgq_workloads::motifs::queries::FOUR_CYCLES,
    ];
    let mut compiled = Vec::new();
    for (i, q) in hub_queries.iter().enumerate() {
        engine
            .register_view_wcoj_forced(&format!("ws{i}"), q, true)
            .unwrap();
        engine
            .register_view_wcoj_forced(&format!("wh{i}"), q, false)
            .unwrap();
        engine.register_view_binary(&format!("bi{i}"), q).unwrap();
        engine
            .register_view_unplanned(&format!("un{i}"), q)
            .unwrap();
        compiled.push(compile_query(&parse_query(q).unwrap()).unwrap());
    }
    for (t, tx) in script.iter().enumerate() {
        engine.apply(tx).expect("hub churn tx applies");
        if t % 10 != 0 && t + 1 != script.len() {
            continue;
        }
        for (i, c) in compiled.iter().enumerate() {
            let want = eval_consolidated(&c.fra, engine.graph());
            for prefix in ["ws", "wh", "bi", "un"] {
                let id = engine.view_by_name(&format!("{prefix}{i}")).unwrap();
                assert_eq!(
                    engine.view(id).unwrap().results(),
                    want,
                    "{prefix} twin diverged at tx {t} on {}",
                    hub_queries[i]
                );
            }
        }
    }
}

#[test]
fn multiplicities_match_for_fanout_joins() {
    // Bag semantics: two parallel REPLY edges double the row.
    let mut g = PropertyGraph::new();
    let (a, _) = g.add_vertex(
        [s("Post")],
        Properties::from_iter([("lang", Value::str("en"))]),
    );
    let (b, _) = g.add_vertex(
        [s("Comm")],
        Properties::from_iter([("lang", Value::str("en"))]),
    );
    g.add_edge(a, b, s("REPLY"), Properties::new()).unwrap();
    g.add_edge(a, b, s("REPLY"), Properties::new()).unwrap();

    let compiled =
        compile_query(&parse_query("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c").unwrap())
            .unwrap();
    let view = MaterializedView::create("m", &compiled, &g).unwrap();
    let mut counts: FxHashMap<Tuple, i64> = FxHashMap::default();
    for (t, m) in view.results() {
        *counts.entry(t).or_insert(0) += m;
    }
    assert_eq!(counts.len(), 1);
    assert_eq!(*counts.values().next().unwrap(), 2);
    assert_eq!(view.results(), eval_consolidated(&compiled.fra, &g));
}

// ---- recovery oracle -------------------------------------------------------
//
// Durability must be observationally invisible: after ANY random script,
// an engine recovered from its WAL + snapshot must hold exactly the
// views a never-crashed engine holds, and both must equal a
// from-scratch evaluation over the recovered graph. The crash here is a
// logical one (the engine is dropped without a final snapshot, so the
// WAL tail carries the recent transactions); byte-level torn-write
// crashes are swept separately by `tests/durability_crash.rs`.

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn recovered_engine_equals_survivor_and_recompute(
        steps in proptest::collection::vec(step_strategy(), 1..25),
        snapshot_every in 0u64..6,
    ) {
        use pgq_core::GraphEngine;
        use pgq_durability::MemDisk;
        use std::sync::Arc;

        let disk = MemDisk::new();
        let mut durable = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
        durable.set_snapshot_every(snapshot_every);
        let mut survivor = GraphEngine::new();

        // A spread of view flavors: join, var-length path, aggregate,
        // negation — registered identically on both engines (plus an
        // unplanned and a binary twin, so mode-faithful re-registration
        // is part of what recovery must reproduce).
        let flavors: &[usize] = &[2, 4, 7, 11];
        let mut compiled = Vec::new();
        for &qi in flavors {
            let q = QUERIES[qi];
            compiled.push((format!("v{qi}"), compile_query(&parse_query(q).unwrap()).unwrap()));
            durable.register_view(&format!("v{qi}"), q).unwrap();
            survivor.register_view(&format!("v{qi}"), q).unwrap();
        }
        durable.register_view_unplanned("un2", QUERIES[2]).unwrap();
        survivor.register_view_unplanned("un2", QUERIES[2]).unwrap();
        durable.register_view_binary("bi3", QUERIES[3]).unwrap();
        survivor.register_view_binary("bi3", QUERIES[3]).unwrap();

        // Fixed prelude so the random tail has something to mutate,
        // then the random script — every transaction through both
        // engines.
        let prelude = [
            Step::AddPost { lang: 0 },
            Step::AddPost { lang: 1 },
            Step::AddComment { parent: 0, lang: 0 },
            Step::AddComment { parent: 1, lang: 1 },
            Step::AddReply { from: 0, to: 3 },
        ];
        for step in prelude.iter().chain(&steps) {
            let tx = step_transaction(durable.graph(), step);
            durable.apply(&tx).unwrap();
            survivor.apply(&tx).unwrap();
        }

        // "Crash": drop the durable engine with no goodbye snapshot;
        // recover from the bytes on disk.
        drop(durable);
        let recovered = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();

        for (name, plan) in &compiled {
            let rid = recovered.view_by_name(name).expect("view survives recovery");
            let sid = survivor.view_by_name(name).unwrap();
            let got = recovered.view(rid).unwrap().results();
            prop_assert_eq!(
                &got,
                &survivor.view(sid).unwrap().results(),
                "recovered view {} diverged from the never-crashed engine", name
            );
            prop_assert_eq!(
                &got,
                &eval_consolidated(&plan.fra, recovered.graph()),
                "recovered view {} diverged from recompute", name
            );
        }
        for name in ["un2", "bi3"] {
            let rid = recovered.view_by_name(name).expect("view survives recovery");
            let sid = survivor.view_by_name(name).unwrap();
            prop_assert_eq!(
                recovered.view(rid).unwrap().results(),
                survivor.view(sid).unwrap().results(),
                "recovered view {} diverged from the never-crashed engine", name
            );
        }
        // Continued operation after recovery: one more transaction must
        // maintain, not corrupt.
        let mut recovered = recovered;
        let tx = step_transaction(recovered.graph(), &Step::AddPost { lang: 2 });
        recovered.apply(&tx).unwrap();
        let tx2 = step_transaction(survivor.graph(), &Step::AddPost { lang: 2 });
        survivor.apply(&tx2).unwrap();
        for (name, plan) in &compiled {
            let rid = recovered.view_by_name(name).unwrap();
            prop_assert_eq!(
                recovered.view(rid).unwrap().results(),
                eval_consolidated(&plan.fra, recovered.graph()),
                "post-recovery maintenance diverged on {}", name
            );
        }
    }
}
