//! Seeded crash-point sweep for the durability subsystem (CI's
//! `durability-crash` job).
//!
//! Each iteration derives a seed, generates a random update script, and
//! first runs it durably against an unlimited in-memory disk to learn
//! the total number of bytes the run *attempts* to write (WAL appends,
//! snapshot renames, generation switchovers — everything). It then
//! re-runs the identical script against fresh disks whose write
//! **fuse** blows after `f` bytes — sweeping `f` across the full range,
//! so the simulated power cut lands at every phase of the run:
//! mid-snapshot, between WAL records, *inside* a WAL record (a torn
//! append), and — with compaction armed and a low snapshot cadence —
//! in the middle of a generation switchover (new snapshot durable but
//! old generation not yet deleted, or neither). Writes after the fuse
//! blows are silently dropped, exactly like a kernel that never flushed
//! them.
//!
//! After each simulated crash the engine is recovered from the
//! surviving bytes and must satisfy:
//!
//! 1. **Prefix durability** — the recovered graph equals the state
//!    after some prefix of the committed transactions (never a torn
//!    half-transaction, never a reordering), no matter which
//!    generation recovery lands on.
//! 2. **View consistency** — every recovered view equals a from-scratch
//!    evaluation of its plan over the recovered graph, and the set of
//!    recovered views is a registration-order prefix.
//! 3. **Progress** — recovery itself never errors and never panics: a
//!    torn switchover leaves either generation recoverable, and stale
//!    files from the old generation are swept.
//!
//! The propagation width comes from `PGQ_THREADS` (the CI job runs the
//! sweep at widths 1 and 4). `PGQ_STRESS_ITERS` scales the number of
//! seeded scripts; every assertion message carries the seed so failures
//! reproduce locally via `PGQ_STRESS_SEED`. The live-disk *error*
//! model (reported failures instead of silent crashes) is swept in
//! `durability_faults.rs`.

mod durability_script;

use std::sync::Arc;

use durability_script::{graph_identity, run_script, RunMode, TXS_PER_SCRIPT, VIEWS};
use pgq_algebra::pipeline::compile_query;
use pgq_core::GraphEngine;
use pgq_durability::MemDisk;
use pgq_graph::store::PropertyGraph;
use pgq_parser::parse_query;

use durability_script::{env_usize, XorShift};

#[test]
fn crash_at_swept_byte_fuses_recovers_a_transaction_prefix() {
    let iters = env_usize("PGQ_STRESS_ITERS", 2);
    let base_seed = env_usize("PGQ_STRESS_SEED", 0xD00D_FEED) as u64;
    let threads = env_usize("PGQ_THREADS", 1);
    let compiled: Vec<_> = VIEWS
        .iter()
        .map(|(_, q)| compile_query(&parse_query(q).unwrap()).unwrap())
        .collect();

    for iter in 0..iters {
        let seed = base_seed
            .wrapping_add(iter as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);

        // Reference run: learn the total attempted write volume and the
        // graph identity after every transaction prefix (the set of
        // states a crash may legally recover to). `bytes_attempted`
        // counts every byte the engine *tried* to write — including
        // snapshots whose generation was later compacted away — which
        // is exactly the fuse's index space.
        let ref_disk = MemDisk::new();
        let ref_run = run_script(ref_disk.vfs(), seed, threads, RunMode::Strict);
        let txs = ref_run.committed;
        let total = ref_disk.bytes_attempted();
        let mut legal = Vec::with_capacity(txs.len() + 1);
        let mut shadow = PropertyGraph::new();
        legal.push(graph_identity(&shadow));
        for tx in &txs {
            shadow.apply(tx).unwrap();
            legal.push(graph_identity(&shadow));
        }

        // Sweep the fuse across the write volume: a dense stride plus
        // the exact edges (0, 1, total-1, total — the all-dropped and
        // nothing-dropped crashes).
        let stride = (total / 64).max(1);
        let mut fuses: Vec<u64> = (0..=total).step_by(stride as usize).collect();
        for edge in [0, 1, total.saturating_sub(1), total] {
            if !fuses.contains(&edge) {
                fuses.push(edge);
            }
        }
        let mut rng = XorShift::new(seed ^ 0xFACE);
        for _ in 0..16 {
            let f = rng.next() % (total + 1);
            if !fuses.contains(&f) {
                fuses.push(f);
            }
        }

        for &fuse in &fuses {
            let disk = MemDisk::new();
            // The doomed run: identical script, writes cut at `fuse`
            // bytes. The engine itself never observes the cut.
            let _ = run_script(disk.vfs_with_fuse(fuse), seed, threads, RunMode::Strict);

            // Power comes back: recover from the surviving bytes.
            let recovered = GraphEngine::open_durable_with(Arc::new(disk.vfs()))
                .unwrap_or_else(|e| panic!("seed={seed:#x} fuse={fuse}: recovery failed: {e}"));

            // 1. Prefix durability.
            let identity = graph_identity(recovered.graph());
            let prefix = legal.iter().position(|l| *l == identity);
            assert!(
                prefix.is_some(),
                "seed={seed:#x} fuse={fuse}: recovered graph is not a transaction prefix \
                 ({} vertices, {} edges)",
                recovered.graph().vertex_count(),
                recovered.graph().edge_count(),
            );

            // 2. View consistency. Each registration writes its own
            //    snapshot (the snapshot is the DDL log), so a crash
            //    mid-registration durably keeps a *prefix* of the
            //    registered views — never a later view without an
            //    earlier one.
            let present: Vec<bool> = VIEWS
                .iter()
                .map(|(n, _)| recovered.view_by_name(n).is_some())
                .collect();
            let boundary = present.iter().filter(|p| **p).count();
            assert!(
                present.iter().take(boundary).all(|p| *p),
                "seed={seed:#x} fuse={fuse}: recovered views are not a registration prefix \
                 ({present:?})"
            );
            for ((name, _), plan) in VIEWS.iter().zip(&compiled) {
                let Some(id) = recovered.view_by_name(name) else {
                    continue;
                };
                assert_eq!(
                    recovered.view(id).unwrap().results(),
                    pgq_eval::evaluate_consolidated(&plan.fra, recovered.graph()),
                    "seed={seed:#x} fuse={fuse}: view {name} diverged from recompute"
                );
            }
        }
        eprintln!(
            "crash sweep iter {iter}: seed={seed:#x} ok ({} fuse points over {total} bytes, width {threads})",
            fuses.len()
        );
    }
}

#[test]
fn recovery_is_idempotent_and_resumable() {
    // Crash, recover, commit more, crash again, recover again — the
    // double-recovery path must replay only each tail once, across
    // generation switchovers.
    let seed = env_usize("PGQ_STRESS_SEED", 0xBEEF) as u64 | 1;
    let disk = MemDisk::new();
    let run = run_script(disk.vfs(), seed, 1, RunMode::Strict);

    let mut shadow = PropertyGraph::new();
    for tx in &run.committed {
        shadow.apply(tx).unwrap();
    }

    let mut engine = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
    assert_eq!(
        graph_identity(engine.graph()),
        graph_identity(&shadow),
        "seed={seed:#x}: first recovery lost transactions"
    );
    let mut rng = XorShift::new(seed ^ 0x5EC0);
    for _ in 0..4 {
        let tx = durability_script::random_tx(&mut rng, engine.graph());
        engine.apply(&tx).unwrap();
        shadow.apply(&tx).unwrap();
    }
    drop(engine);

    let engine = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
    assert_eq!(
        graph_identity(engine.graph()),
        graph_identity(&shadow),
        "seed={seed:#x}: second recovery diverged"
    );
    for (name, q) in VIEWS {
        let id = engine.view_by_name(name).unwrap();
        let plan = compile_query(&parse_query(q).unwrap()).unwrap();
        assert_eq!(
            engine.view(id).unwrap().results(),
            pgq_eval::evaluate_consolidated(&plan.fra, engine.graph()),
            "seed={seed:#x}: view {name} diverged after double recovery"
        );
    }
}

#[test]
fn pinned_generation_mode_round_trips() {
    // Compaction off (PR 9 semantics): everything stays in generation
    // 0, snapshots record a skip count instead of switching logs. The
    // same script must round-trip through a restart.
    let seed = 0x00A1_1CE5 | 1;
    let disk = MemDisk::new();
    let run = run_script(disk.vfs(), seed, 1, RunMode::NoCompact);
    assert_eq!(run.committed.len(), TXS_PER_SCRIPT);

    // Generation never moved: the only files are wal.0 / snap.0.
    for name in disk.file_names() {
        assert!(
            name == "wal.0" || name == "snap.0",
            "pinned-generation run created unexpected file {name}"
        );
    }

    let mut shadow = PropertyGraph::new();
    for tx in &run.committed {
        shadow.apply(tx).unwrap();
    }
    let engine = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
    assert_eq!(
        graph_identity(engine.graph()),
        graph_identity(&shadow),
        "pinned-generation recovery diverged"
    );
    for (name, q) in VIEWS {
        let id = engine.view_by_name(name).unwrap();
        let plan = compile_query(&parse_query(q).unwrap()).unwrap();
        assert_eq!(
            engine.view(id).unwrap().results(),
            pgq_eval::evaluate_consolidated(&plan.fra, engine.graph()),
            "pinned-generation view {name} diverged from recompute"
        );
    }
}
