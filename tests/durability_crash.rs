//! Seeded crash-point sweep for the durability subsystem (CI's
//! `durability-crash` job).
//!
//! Each iteration derives a seed, generates a random update script, and
//! first runs it durably against an unlimited in-memory disk to learn
//! the total number of bytes the WAL + snapshots write. It then re-runs
//! the identical script against fresh disks whose write **fuse** blows
//! after `f` bytes — sweeping `f` across the full range, so the
//! simulated power cut lands at every phase of the run: mid-snapshot,
//! between WAL records, and *inside* a WAL record (a torn append).
//! Writes after the fuse blows are silently dropped, exactly like a
//! kernel that never flushed them.
//!
//! After each simulated crash the engine is recovered from the
//! surviving bytes and must satisfy:
//!
//! 1. **Prefix durability** — the recovered graph equals the state
//!    after some prefix of the committed transactions (never a torn
//!    half-transaction, never a reordering).
//! 2. **View consistency** — every recovered view equals a from-scratch
//!    evaluation of its plan over the recovered graph.
//! 3. **Progress** — recovery itself never errors on a torn tail (only
//!    a corrupt *snapshot* is a hard error, and a fuse cannot corrupt:
//!    snapshots are written atomically).
//!
//! The propagation width comes from `PGQ_THREADS` (the CI job runs the
//! sweep at widths 1 and 4). `PGQ_STRESS_ITERS` scales the number of
//! seeded scripts; every assertion message carries the seed so failures
//! reproduce locally via `PGQ_STRESS_SEED`.

use std::sync::Arc;

use pgq_algebra::pipeline::compile_query;
use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_core::GraphEngine;
use pgq_durability::{MemDisk, Snapshot};
use pgq_graph::props::Properties;
use pgq_graph::store::PropertyGraph;
use pgq_graph::tx::Transaction;
use pgq_parser::parse_query;

const LANGS: &[&str] = &["en", "de", "fr"];
const TXS_PER_SCRIPT: usize = 16;

/// The standing views every crash must preserve: a filtered join, an
/// aggregate, and a variable-length path (the three operator-state
/// shapes — join memories, group table, path store).
const VIEWS: &[(&str, &str)] = &[
    (
        "same_lang",
        "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    ),
    (
        "by_lang",
        "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    ),
    (
        "threads",
        "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t",
    ),
];

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

/// One random single-op transaction against the current graph.
fn random_tx(rng: &mut XorShift, g: &PropertyGraph) -> Transaction {
    let vertices: Vec<_> = {
        let mut v: Vec<_> = g.vertex_ids().collect();
        v.sort_unstable();
        v
    };
    let edges: Vec<_> = {
        let mut e: Vec<_> = g.edge_ids().collect();
        e.sort_unstable();
        e
    };
    let mut tx = Transaction::new();
    match rng.below(6) {
        0 | 1 => {
            tx.create_vertex(
                [s("Post")],
                Properties::from_iter([("lang", Value::str(LANGS[rng.below(LANGS.len())]))]),
            );
        }
        2 if !vertices.is_empty() => {
            let p = vertices[rng.below(vertices.len())];
            let c = tx.create_vertex(
                [s("Comm")],
                Properties::from_iter([("lang", Value::str(LANGS[rng.below(LANGS.len())]))]),
            );
            tx.create_edge(p, c, s("REPLY"), Properties::new());
        }
        3 if !vertices.is_empty() => {
            tx.set_vertex_prop(
                vertices[rng.below(vertices.len())],
                s("lang"),
                Value::str(LANGS[rng.below(LANGS.len())]),
            );
        }
        4 if !edges.is_empty() => {
            tx.delete_edge(edges[rng.below(edges.len())]);
        }
        5 if !vertices.is_empty() => {
            tx.delete_vertex(vertices[rng.below(vertices.len())], true);
        }
        _ => {
            tx.create_vertex([s("Post")], Properties::new());
        }
    }
    tx
}

/// Content identity of a graph: the deterministic sorted dump (ids,
/// labels, properties, endpoints) rendered to one string.
fn graph_identity(g: &PropertyGraph) -> String {
    let snap = Snapshot::capture_graph(g);
    format!("{:?} {:?}", snap.vertices, snap.edges)
}

/// Run the script durably on `disk`, dropping nothing. Returns the
/// transactions actually committed.
fn run_script(disk: &MemDisk, fuse: Option<u64>, seed: u64, threads: usize) -> Vec<Transaction> {
    let vfs = match fuse {
        Some(budget) => disk.vfs_with_fuse(budget),
        None => disk.vfs(),
    };
    let mut engine = GraphEngine::open_durable_with(Arc::new(vfs))
        .unwrap_or_else(|e| panic!("seed={seed:#x}: open failed: {e}"));
    engine.set_threads(threads);
    engine.set_snapshot_every(5);
    for (name, q) in VIEWS {
        engine
            .register_view(name, q)
            .unwrap_or_else(|e| panic!("seed={seed:#x}: register {name} failed: {e}"));
    }
    let mut rng = XorShift::new(seed);
    let mut txs = Vec::with_capacity(TXS_PER_SCRIPT);
    for t in 0..TXS_PER_SCRIPT {
        let tx = random_tx(&mut rng, engine.graph());
        engine
            .apply(&tx)
            .unwrap_or_else(|e| panic!("seed={seed:#x} tx {t}: apply failed: {e}"));
        txs.push(tx);
    }
    txs
}

#[test]
fn crash_at_swept_byte_fuses_recovers_a_transaction_prefix() {
    let iters = env_usize("PGQ_STRESS_ITERS", 2);
    let base_seed = env_usize("PGQ_STRESS_SEED", 0xD00D_FEED) as u64;
    let threads = env_usize("PGQ_THREADS", 1);
    let compiled: Vec<_> = VIEWS
        .iter()
        .map(|(_, q)| compile_query(&parse_query(q).unwrap()).unwrap())
        .collect();

    for iter in 0..iters {
        let seed = base_seed
            .wrapping_add(iter as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);

        // Reference run: learn the total write volume and the graph
        // identity after every transaction prefix (the set of states a
        // crash may legally recover to).
        let ref_disk = MemDisk::new();
        let txs = run_script(&ref_disk, None, seed, threads);
        let total: u64 = [
            pgq_durability::wal::WAL_FILE,
            pgq_durability::snapshot::SNAPSHOT_FILE,
        ]
        .iter()
        .filter_map(|f| ref_disk.len(f))
        .map(|n| n as u64)
        .sum();
        let mut legal = Vec::with_capacity(txs.len() + 1);
        let mut shadow = PropertyGraph::new();
        legal.push(graph_identity(&shadow));
        for tx in &txs {
            shadow.apply(tx).unwrap();
            legal.push(graph_identity(&shadow));
        }

        // Sweep the fuse across the write volume: a dense stride plus
        // the exact edges (0, 1, total-1, total — the all-dropped and
        // nothing-dropped crashes).
        let stride = (total / 64).max(1);
        let mut fuses: Vec<u64> = (0..=total).step_by(stride as usize).collect();
        for edge in [0, 1, total.saturating_sub(1), total] {
            if !fuses.contains(&edge) {
                fuses.push(edge);
            }
        }
        let mut rng = XorShift::new(seed ^ 0xFACE);
        for _ in 0..16 {
            let f = rng.next() % (total + 1);
            if !fuses.contains(&f) {
                fuses.push(f);
            }
        }

        for &fuse in &fuses {
            let disk = MemDisk::new();
            // The doomed run: identical script, writes cut at `fuse`
            // bytes. The engine itself never observes the cut.
            let _ = run_script(&disk, Some(fuse), seed, threads);

            // Power comes back: recover from the surviving bytes.
            let recovered = GraphEngine::open_durable_with(Arc::new(disk.vfs()))
                .unwrap_or_else(|e| panic!("seed={seed:#x} fuse={fuse}: recovery failed: {e}"));

            // 1. Prefix durability.
            let identity = graph_identity(recovered.graph());
            let prefix = legal.iter().position(|l| *l == identity);
            assert!(
                prefix.is_some(),
                "seed={seed:#x} fuse={fuse}: recovered graph is not a transaction prefix \
                 ({} vertices, {} edges)",
                recovered.graph().vertex_count(),
                recovered.graph().edge_count(),
            );

            // 2. View consistency. Each registration writes its own
            //    snapshot (the snapshot is the DDL log), so a crash
            //    mid-registration durably keeps a *prefix* of the
            //    registered views — never a later view without an
            //    earlier one.
            let present: Vec<bool> = VIEWS
                .iter()
                .map(|(n, _)| recovered.view_by_name(n).is_some())
                .collect();
            let boundary = present.iter().filter(|p| **p).count();
            assert!(
                present.iter().take(boundary).all(|p| *p),
                "seed={seed:#x} fuse={fuse}: recovered views are not a registration prefix \
                 ({present:?})"
            );
            for ((name, _), plan) in VIEWS.iter().zip(&compiled) {
                let Some(id) = recovered.view_by_name(name) else {
                    continue;
                };
                assert_eq!(
                    recovered.view(id).unwrap().results(),
                    pgq_eval::evaluate_consolidated(&plan.fra, recovered.graph()),
                    "seed={seed:#x} fuse={fuse}: view {name} diverged from recompute"
                );
            }
        }
        eprintln!(
            "crash sweep iter {iter}: seed={seed:#x} ok ({} fuse points over {total} bytes, width {threads})",
            fuses.len()
        );
    }
}

#[test]
fn recovery_is_idempotent_and_resumable() {
    // Crash, recover, commit more, crash again, recover again — the
    // double-recovery path must replay only each tail once.
    let seed = env_usize("PGQ_STRESS_SEED", 0xBEEF) as u64 | 1;
    let disk = MemDisk::new();
    let txs = run_script(&disk, None, seed, 1);

    let mut shadow = PropertyGraph::new();
    for tx in &txs {
        shadow.apply(tx).unwrap();
    }

    let mut engine = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
    assert_eq!(
        graph_identity(engine.graph()),
        graph_identity(&shadow),
        "seed={seed:#x}: first recovery lost transactions"
    );
    let mut rng = XorShift::new(seed ^ 0x5EC0);
    for _ in 0..4 {
        let tx = random_tx(&mut rng, engine.graph());
        engine.apply(&tx).unwrap();
        shadow.apply(&tx).unwrap();
    }
    drop(engine);

    let engine = GraphEngine::open_durable_with(Arc::new(disk.vfs())).unwrap();
    assert_eq!(
        graph_identity(engine.graph()),
        graph_identity(&shadow),
        "seed={seed:#x}: second recovery diverged"
    );
    for (name, q) in VIEWS {
        let id = engine.view_by_name(name).unwrap();
        let plan = compile_query(&parse_query(q).unwrap()).unwrap();
        assert_eq!(
            engine.view(id).unwrap().results(),
            pgq_eval::evaluate_consolidated(&plan.fra, engine.graph()),
            "seed={seed:#x}: view {name} diverged after double recovery"
        );
    }
}
