//! Experiments E2–E4: golden renderings of the three compilation stages
//! for the paper's running example, mirroring the three expressions shown
//! in Section 4 (steps 1–3).
//!
//! Notation mapping (ours → paper's):
//! `©(p:Post)` → `©(p:Post)`; `↑[...]` → `↑`; `⇑[...]` → `⇑`;
//! `⋈*` → `./∗`; `µ[c.lang]` → `µ c.lang→cL`;
//! `{lang→c.lang}` → `{lang→cL}`.

use pgq_algebra::pipeline::compile_query;
use pgq_parser::parse_query;
use pgq_workloads::EXAMPLE_QUERY;

fn compiled() -> pgq_algebra::CompiledQuery {
    compile_query(&parse_query(EXAMPLE_QUERY).unwrap()).unwrap()
}

#[test]
fn e2_gra_golden() {
    // Paper step 1: π_{p,t} σ_{c.lang=p.lang} ↑*(c:Comm)(p)[:REPLY] ©(p:Post)
    let got = compiled().gra.to_string();
    assert_eq!(
        got,
        "π[p, t] (σ[(p.lang = c.lang)] (↑[(p:Post)-[:REPLY*]->(c:Comm), t≪] \
         (ι[t = ⟨p⟩] (©(p:Post)))))"
    );
}

#[test]
fn e3_nra_golden() {
    // Paper step 2: expand replaced by transitive join with ⇑, property
    // accesses unnested with µ.
    let got = compiled().nra.to_string();
    assert_eq!(
        got,
        "π[p, t] (σ[(p.lang = c.lang)] (µ[c.lang] (µ[p.lang] ((ι[t = ⟨p⟩] (©(p:Post)) \
         ⋈*[t≪] ⇑[(p:Post)-[:REPLY*]->(c:Comm)])))))"
    );
}

#[test]
fn e4_fra_golden() {
    // Paper step 3: µ operators are gone; the required attributes are
    // pushed into © (lang→p.lang) and into the ⇑ destination
    // (lang→c.lang).
    let got = compiled().fra.explain();
    let expected = "\
π[p, t]
  σ[(p.lang = c.lang)]
    π[p, p.lang, t++_p1→t, c, c.lang]
      ⋈*1..[p →:REPLY (c:Comm {lang→c.lang}), path=_p1]
        π[p, p.lang, ⟨p⟩→t]
          ©(p:Post {lang→p.lang})
";
    assert_eq!(got, expected);
}

#[test]
fn e4_no_unnest_survives_flattening() {
    let cq = compiled();
    let rendered = cq.fra.explain();
    assert!(!rendered.contains('µ'));
    // And the inferred output schema is exactly the RETURN list.
    assert_eq!(cq.columns, vec!["p".to_string(), "t".to_string()]);
}

#[test]
fn ablation_mode_carries_maps_instead() {
    use pgq_algebra::pipeline::{compile_query_with, CompileOptions};
    use pgq_algebra::SchemaMode;
    let q = parse_query(EXAMPLE_QUERY).unwrap();
    let cq = compile_query_with(
        &q,
        CompileOptions {
            schema_mode: SchemaMode::CarryMaps,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let rendered = cq.fra.explain();
    assert!(rendered.contains("+map"), "{rendered}");
    assert!(!rendered.contains("lang→p.lang"), "{rendered}");
}
