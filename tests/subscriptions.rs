//! Active-query subscriptions: callbacks fire with exact deltas.

use std::sync::{Arc, Mutex};

use pgq_core::{GraphEngine, ViewDelta};

#[test]
fn subscriber_sees_inserts_and_removals() {
    let mut e = GraphEngine::new();
    let view = e
        .register_view("en-posts", "MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
        .unwrap();
    let log: Arc<Mutex<Vec<ViewDelta>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = log.clone();
    e.subscribe(view, move |d| sink.lock().unwrap().push(d.clone()))
        .unwrap();

    e.execute("CREATE (:Post {lang: 'en'})").unwrap();
    e.execute("CREATE (:Post {lang: 'de'})").unwrap(); // no delta for this view
    e.execute("MATCH (p:Post {lang: 'en'}) SET p.lang = 'fr'")
        .unwrap();

    let log = log.lock().unwrap();
    assert_eq!(log.len(), 2, "{log:?}");
    assert_eq!(log[0].inserted.len(), 1);
    assert!(log[0].removed.is_empty());
    assert!(log[1].inserted.is_empty());
    assert_eq!(log[1].removed.len(), 1);
    assert_eq!(log[0].view, "en-posts");
}

#[test]
fn multiple_subscribers_on_one_view() {
    let mut e = GraphEngine::new();
    let view = e.register_view("v", "MATCH (p:Post) RETURN p").unwrap();
    let count = Arc::new(Mutex::new(0usize));
    for _ in 0..3 {
        let c = count.clone();
        e.subscribe(view, move |_| *c.lock().unwrap() += 1).unwrap();
    }
    e.execute("CREATE (:Post)").unwrap();
    assert_eq!(*count.lock().unwrap(), 3);
}

#[test]
fn subscribe_to_unknown_view_errors() {
    let mut e = GraphEngine::new();
    let view = e.register_view("v", "MATCH (p:Post) RETURN p").unwrap();
    e.drop_view(view).unwrap();
    assert!(e.subscribe(view, |_| {}).is_err());
}

#[test]
fn clone_drops_subscribers_but_keeps_views() {
    let mut e = GraphEngine::new();
    let view = e.register_view("v", "MATCH (p:Post) RETURN p").unwrap();
    let count = Arc::new(Mutex::new(0usize));
    let c = count.clone();
    e.subscribe(view, move |_| *c.lock().unwrap() += 1).unwrap();

    let mut clone = e.clone();
    clone.execute("CREATE (:Post)").unwrap();
    // The clone maintains its views but does not fire the original's
    // callbacks.
    assert_eq!(*count.lock().unwrap(), 0);
    assert_eq!(clone.view_results(view).unwrap().len(), 1);

    // The original still fires.
    e.execute("CREATE (:Post)").unwrap();
    assert_eq!(*count.lock().unwrap(), 1);
}

#[test]
fn view_stats_expose_network_shape() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:Post {lang:'en'})-[:REPLY]->(:Comm {lang:'en'})")
        .unwrap();
    let view = e
        .register_view(
            "threads",
            "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
        )
        .unwrap();
    let stats = e.view_stats(view).unwrap();
    let rendered = stats.to_string();
    assert!(rendered.contains("⋈*"), "{rendered}");
    assert!(rendered.contains("©"), "{rendered}");
    assert!(stats.total_tuples() > 0);
}
