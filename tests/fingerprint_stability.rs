//! Cross-process fingerprint stability — the property the durability
//! layer's snapshot format stands on.
//!
//! Operator-state snapshots are keyed by `(fingerprint, snapshot_check)`
//! and restored by a *different* process whose string interner assigned
//! different ids in a different order. This test asserts the promise in
//! `pgq_algebra::fingerprint`'s module docs directly: it re-runs itself
//! as a child process that **scrambles its interner first** (interning a
//! pile of decoy symbols before any query text), computes the
//! fingerprint and snapshot-check of every probe query, and writes them
//! to a file. The parent computes the same hashes in its own pristine
//! process and compares, hex for hex.
//!
//! The child/parent split rides on two env vars: `PGQ_FP_CHILD=1`
//! selects the child branch, `PGQ_FP_OUT` names the hand-off file.

use std::io::Write as _;
use std::process::Command;

use pgq_algebra::canon::canonicalize;
use pgq_algebra::pipeline::compile_query;
use pgq_common::intern::Symbol;
use pgq_parser::parse_query;

/// Probe queries covering every fingerprint input class: scan labels,
/// pushed properties, join keys, predicates, projection names,
/// aggregates, and variable-length specs.
const PROBES: &[&str] = &[
    "MATCH (p:Post) RETURN p",
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t",
    "MATCH (a:Comm)-[:REPLY]->(b:Comm), (b)-[:REPLY]->(c:Comm), (a)-[:REPLY]->(c) RETURN a, b, c",
    "MATCH (u:User)-[:LIKES]->(p:Post) RETURN u, count(p) AS liked",
];

/// One line per probe: `<fingerprint-hex> <snapshot-check-hex>` for the
/// raw compiled plan AND its canonical form (four hashes per query).
fn hash_report() -> String {
    let mut out = String::new();
    for q in PROBES {
        let compiled = compile_query(&parse_query(q).unwrap()).unwrap();
        let canon = canonicalize(&compiled.fra);
        out.push_str(&format!(
            "{:016x} {:016x} {:016x} {:016x}\n",
            compiled.fra.fingerprint().0,
            compiled.fra.snapshot_check().0,
            canon.plan.fingerprint().0,
            canon.plan.snapshot_check().0,
        ));
    }
    out
}

#[test]
fn fingerprint_survives_process_boundary() {
    if std::env::var_os("PGQ_FP_CHILD").is_some() {
        // Child branch: scramble the interner so every symbol the probe
        // queries intern lands on a different id than in the parent,
        // then report hashes.
        for i in 0..257 {
            Symbol::intern(&format!("decoy-symbol-{i}"));
        }
        let out = std::env::var("PGQ_FP_OUT").expect("child needs PGQ_FP_OUT");
        let mut f = std::fs::File::create(&out).expect("create hand-off file");
        f.write_all(hash_report().as_bytes()).expect("write report");
        return;
    }

    let dir = std::env::temp_dir().join(format!("pgq-fp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("child-hashes.txt");

    let status = Command::new(std::env::current_exe().unwrap())
        .args([
            "--exact",
            "fingerprint_survives_process_boundary",
            "--nocapture",
        ])
        .env("PGQ_FP_CHILD", "1")
        .env("PGQ_FP_OUT", &out)
        .status()
        .expect("spawn child test process");
    assert!(status.success(), "child process failed: {status}");

    let child = std::fs::read_to_string(&out).expect("read child report");
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_dir(&dir);

    let parent = hash_report();
    for ((cl, pl), q) in child.lines().zip(parent.lines()).zip(PROBES) {
        assert_eq!(
            cl, pl,
            "fingerprints diverged across processes for probe `{q}` \
             (child vs parent: raw-fp raw-check canon-fp canon-check)"
        );
    }
    assert_eq!(
        child.lines().count(),
        parent.lines().count(),
        "child reported a different number of probes"
    );
}
