//! The optimiser must be semantics-preserving: for every query in the
//! battery, the optimised plan computes the same bag as the unoptimised
//! one — both evaluated from scratch and maintained incrementally under
//! a stream of updates.

use pgq_algebra::pipeline::{compile_query_with, CompileOptions};
use pgq_core::GraphEngine;
use pgq_parser::parse_query;
use pgq_workloads::social::{generate_social, SocialParams};

const QUERIES: &[&str] = &[
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
    "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.country = 'en' AND b.country = 'de' RETURN a, b",
    "MATCH (a:Person)-[:CREATED]->(p:Post) WHERE p.lang = 'en' AND a.country = p.lang RETURN a, p",
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = 'en' AND p.lang = c.lang RETURN p, t",
    "MATCH (p:Post) WHERE p.len > 100 RETURN p.lang AS l, count(*) AS n",
    "MATCH (p:Post) WHERE 1 + 1 = 2 AND p.len >= 0 RETURN DISTINCT p.lang",
    "MATCH t = (p:Post)-[:REPLY*1..2]->(c:Comm) UNWIND nodes(t) AS n RETURN n",
];

#[test]
fn optimized_equals_unoptimized_from_scratch() {
    let net = generate_social(SocialParams::scale(0.1, 9));
    for q in QUERIES {
        let parsed = parse_query(q).unwrap();
        let plain = compile_query_with(&parsed, CompileOptions::default()).unwrap();
        let opt = compile_query_with(&parsed, CompileOptions::optimized()).unwrap();
        assert_eq!(plain.columns, opt.columns, "{q}");
        let a = pgq_eval::evaluate_consolidated(&plain.fra, &net.graph);
        let b = pgq_eval::evaluate_consolidated(&opt.fra, &net.graph);
        assert_eq!(
            a,
            b,
            "{q}\nplain:\n{}\nopt:\n{}",
            plain.fra.explain(),
            opt.fra.explain()
        );
    }
}

#[test]
fn optimized_views_maintain_identically() {
    let mut net = generate_social(SocialParams::scale(0.1, 9));
    let stream = net.update_stream(60, (4, 2, 3, 1));
    for q in QUERIES {
        let mut plain_engine = GraphEngine::from_graph(net.graph.clone());
        let vp = plain_engine.register_view("plain", q).unwrap();
        let mut opt_engine = GraphEngine::from_graph(net.graph.clone());
        let vo = opt_engine
            .register_view_with("opt", q, CompileOptions::optimized())
            .unwrap();
        for tx in &stream {
            plain_engine.apply(tx).unwrap();
            opt_engine.apply(tx).unwrap();
        }
        assert_eq!(
            plain_engine.view(vp).unwrap().results(),
            opt_engine.view(vo).unwrap().results(),
            "{q}"
        );
    }
}

#[test]
fn optimizer_reduces_join_memory_traffic() {
    // Pushing `p.lang = 'en'` below the ⋈* means the join memories only
    // hold English posts — measurably fewer memory tuples.
    let net = generate_social(SocialParams::scale(0.25, 9));
    let q = "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = 'en' RETURN p, t";
    let mut plain = GraphEngine::from_graph(net.graph.clone());
    let vp = plain.register_view("plain", q).unwrap();
    let mut opt = GraphEngine::from_graph(net.graph.clone());
    let vo = opt
        .register_view_with("opt", q, CompileOptions::optimized())
        .unwrap();
    let mp = plain.view(vp).unwrap().memory_tuples();
    let mo = opt.view(vo).unwrap().memory_tuples();
    assert!(
        mo < mp,
        "expected fewer memory tuples with push-down: {mo} vs {mp}"
    );
    assert_eq!(
        plain.view(vp).unwrap().results(),
        opt.view(vo).unwrap().results()
    );
}
