//! Engine-level canonicalisation: alpha-renamed / conjunct-reordered /
//! alias-renamed duplicates of a registered view add **zero** operator
//! nodes, `WHERE`-only-differing families share their whole stateful
//! prefix, and the collapsed network delivers each change event once —
//! all while every view keeps answering with its own schema and the
//! exact recompute result.

use pgq_core::GraphEngine;
use pgq_workloads::social::{renamed_overlap_query, WHERE_FAMILY_QUERIES};

fn seeded_engine() -> GraphEngine {
    let mut e = GraphEngine::new();
    e.execute_script(
        "CREATE (:Post {lang:'en'})-[:REPLY]->(:Comm {lang:'en'});\
         CREATE (:Post {lang:'de'})-[:REPLY]->(:Comm {lang:'fr'});\
         CREATE (:Post {lang:'fr'})-[:REPLY]->(:Comm {lang:'fr'})",
    )
    .unwrap();
    e
}

/// Check a view against a from-scratch evaluation of its own compiled
/// plan.
fn assert_matches_recompute(e: &GraphEngine, name: &str) {
    let id = e.view_by_name(name).unwrap();
    let compiled = e.view_compiled(id).unwrap();
    assert_eq!(
        e.view(id).unwrap().results(),
        pgq_eval::evaluate_consolidated(&compiled.fra, e.graph()),
        "view {name} diverged from recompute"
    );
}

#[test]
fn alpha_equivalent_views_add_zero_nodes() {
    let mut e = seeded_engine();
    e.register_view("base", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        .unwrap();
    let nodes = e.network_node_count();

    // Renamed variables, reordered WHERE conjuncts, renamed output
    // aliases: all alpha-equivalent, all must cons onto existing nodes.
    for (name, q) in [
        ("renamed", "MATCH (x:Post)-[:REPLY]->(y:Comm) RETURN x, y"),
        (
            "aliased",
            "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p AS post, c AS comment",
        ),
    ] {
        e.register_view(name, q).unwrap();
        assert_eq!(
            e.network_node_count(),
            nodes,
            "{name} must add zero operator nodes"
        );
    }
    let with_where = "MATCH (p:Post)-[:REPLY]->(c:Comm) \
                      WHERE p.lang = 'en' AND c.lang = 'en' RETURN p, c";
    let reordered = "MATCH (a:Post)-[:REPLY]->(b:Comm) \
                     WHERE b.lang = 'en' AND a.lang = 'en' RETURN a, b";
    e.register_view("w0", with_where).unwrap();
    let nodes_with_filter = e.network_node_count();
    e.register_view("w1", reordered).unwrap();
    assert_eq!(
        e.network_node_count(),
        nodes_with_filter,
        "reordered conjuncts under renamed variables must add zero nodes"
    );

    // Sharing must be observationally invisible.
    e.execute("CREATE (:Post {lang:'en'})-[:REPLY]->(:Comm {lang:'en'})")
        .unwrap();
    for name in ["base", "renamed", "aliased", "w0", "w1"] {
        assert_matches_recompute(&e, name);
    }
    // The alias-renamed view reports its own column names.
    let id = e.view_by_name("aliased").unwrap();
    assert_eq!(e.view(id).unwrap().columns(), ["post", "comment"]);
}

#[test]
fn renamed_copies_deliver_each_event_once() {
    // Engine A: one view. Engine B: 8 alpha-renamed copies. The same
    // transaction must deliver the same number of scan events to both —
    // the collapsed form does not multiply delivery by view count.
    let mut a = seeded_engine();
    let mut b = seeded_engine();
    a.register_view("v0", &renamed_overlap_query(0)).unwrap();
    for i in 0..8 {
        b.register_view(&format!("v{i}"), &renamed_overlap_query(i))
            .unwrap();
    }
    assert_eq!(
        a.network_node_count(),
        b.network_node_count(),
        "8 renamed copies collapse to the single view's chain"
    );

    let tx = "CREATE (:Post {lang:'hu'})-[:REPLY]->(:Comm {lang:'hu'})";
    a.execute(tx).unwrap();
    b.execute(tx).unwrap();
    let delivered = |e: &GraphEngine| -> u64 {
        e.network()
            .node_summaries()
            .iter()
            .map(|n| n.delivered_events)
            .sum()
    };
    assert_eq!(
        delivered(&a),
        delivered(&b),
        "the collapsed network delivers each event once, not once per view"
    );
    for i in 0..8 {
        assert_matches_recompute(&b, &format!("v{i}"));
    }
}

#[test]
fn where_family_shares_prefix_and_stays_correct() {
    let mut e = seeded_engine();
    e.register_view("m0", WHERE_FAMILY_QUERIES[0]).unwrap();
    let first = e.network_node_count();
    for (i, q) in WHERE_FAMILY_QUERIES.iter().enumerate().skip(1) {
        e.register_view(&format!("m{i}"), q).unwrap();
        // Each member adds only its private stateless σ/π suffix (≤ 2
        // nodes); the scans and any join memories stay shared.
        assert!(
            e.network_node_count() <= first + 2 * i,
            "member {i} duplicated shared prefix nodes: {} > {}",
            e.network_node_count(),
            first + 2 * i
        );
    }

    // Maintain through churn and compare every member against recompute.
    e.execute_script(
        "CREATE (:Post {lang:'de'})-[:REPLY]->(:Comm {lang:'hu'});\
         MATCH (c:Comm) WHERE c.lang = 'fr' SET c.lang = 'en'",
    )
    .unwrap();
    for i in 0..WHERE_FAMILY_QUERIES.len() {
        assert_matches_recompute(&e, &format!("m{i}"));
    }
}

#[test]
fn permuted_return_shares_everything_below_the_tail() {
    let mut e = seeded_engine();
    e.register_view("pc", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        .unwrap();
    let nodes = e.network_node_count();
    // Same pattern, permuted RETURN: at most the canonical tail
    // projection is new.
    e.register_view("cp", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN c, p")
        .unwrap();
    assert!(
        e.network_node_count() <= nodes + 1,
        "permuted RETURN shares everything below one tail projection"
    );
    // A second view with the same permutation shares the tail too.
    let with_tail = e.network_node_count();
    e.register_view("cp2", "MATCH (x:Post)-[:REPLY]->(y:Comm) RETURN y, x")
        .unwrap();
    assert_eq!(e.network_node_count(), with_tail);

    e.execute("CREATE (:Post {lang:'nl'})-[:REPLY]->(:Comm {lang:'nl'})")
        .unwrap();
    for name in ["pc", "cp", "cp2"] {
        assert_matches_recompute(&e, name);
    }
    // Column order is each view's own.
    let pc = e.view_by_name("pc").unwrap();
    let cp = e.view_by_name("cp").unwrap();
    assert_eq!(e.view(pc).unwrap().columns(), ["p", "c"]);
    assert_eq!(e.view(cp).unwrap().columns(), ["c", "p"]);
    let flip = |rows: Vec<pgq_common::tuple::Tuple>| -> Vec<Vec<pgq_common::value::Value>> {
        rows.iter()
            .map(|t| vec![t.get(1).clone(), t.get(0).clone()])
            .collect()
    };
    let mut flipped = flip(e.view_results(pc).unwrap());
    let mut direct: Vec<Vec<pgq_common::value::Value>> = e
        .view_results(cp)
        .unwrap()
        .iter()
        .map(|t| vec![t.get(0).clone(), t.get(1).clone()])
        .collect();
    let key = |r: &Vec<pgq_common::value::Value>| format!("{r:?}");
    flipped.sort_by_key(key);
    direct.sort_by_key(key);
    assert_eq!(flipped, direct, "cp is pc with columns swapped");
}
