//! Intra-repo link checker for the top-level documentation: every
//! relative markdown link in the checked files must point at a path that
//! exists in the repository. External (`http`/`https`/`mailto`) links
//! and pure `#anchor` links are skipped — this guards against the docs
//! rotting as files move, offline and in CI (the docs job runs this test
//! explicitly).

use std::path::Path;

const CHECKED: &[&str] = &[
    "README.md",
    "ARCHITECTURE.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "crates/bench/README.md",
];

/// Extract `](target)` link targets from markdown source. Good enough
/// for the straightforward link syntax these documents use (no nested
/// parentheses in targets).
fn link_targets(md: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = md.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(close) = md[i + 2..].find(')') {
                out.push(md[i + 2..i + 2 + close].to_string());
                i += 2 + close;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    for file in CHECKED {
        let path = root.join(file);
        assert!(path.exists(), "checked doc {file} is missing");
        let md = std::fs::read_to_string(&path).unwrap();
        let base = path.parent().unwrap().to_path_buf();
        for target in link_targets(&md) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            // Strip any trailing anchor.
            let no_anchor = target.split('#').next().unwrap_or(&target);
            if no_anchor.is_empty() {
                continue;
            }
            let resolved = if let Some(stripped) = no_anchor.strip_prefix('/') {
                root.join(stripped)
            } else {
                base.join(no_anchor)
            };
            if !resolved.exists() {
                broken.push(format!("{file}: `{target}` → {}", resolved.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken intra-repo links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn link_extractor_handles_markdown_shapes() {
    let md = "See [a](crates/ivm/src/network.rs) and [b](https://x.y) \
              plus [c](README.md#anchor) and [d](#local).";
    let targets = link_targets(md);
    assert_eq!(
        targets,
        vec![
            "crates/ivm/src/network.rs",
            "https://x.y",
            "README.md#anchor",
            "#local"
        ]
    );
}
