//! End-to-end engine tests: openCypher updates, views, one-shot queries,
//! EXPLAIN, and error paths.

use pgq::prelude::*;
use pgq_core::GraphEngine;

#[test]
fn create_and_query_roundtrip() {
    let mut e = GraphEngine::new();
    let r = e
        .execute("CREATE (:Post {lang: 'en'})-[:REPLY]->(:Comm {lang: 'en'})")
        .unwrap();
    assert_eq!(r.stats.nodes_created, 2);
    assert_eq!(r.stats.relationships_created, 1);

    let res = e
        .query("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        .unwrap();
    assert_eq!(res.rows.len(), 1);
}

#[test]
fn match_create_binds_existing_nodes() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:Post {lang: 'en', k: 1})").unwrap();
    e.execute("CREATE (:Post {lang: 'de', k: 2})").unwrap();
    // One new comment per matched post.
    let r = e
        .execute("MATCH (p:Post) CREATE (p)-[:REPLY]->(:Comm {lang: 'xx'})")
        .unwrap();
    assert_eq!(r.stats.nodes_created, 2);
    assert_eq!(r.stats.relationships_created, 2);
    assert_eq!(e.graph().vertex_count(), 4);
}

#[test]
fn set_with_expression_over_match() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:Post {len: 10})").unwrap();
    e.execute("MATCH (p:Post) SET p.len = p.len + 5").unwrap();
    let res = e.query("MATCH (p:Post) RETURN p.len").unwrap();
    assert_eq!(res.rows[0].get(0), &Value::Int(15));
}

#[test]
fn delete_and_detach_delete() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:Post {lang: 'en'})-[:REPLY]->(:Comm)")
        .unwrap();
    // Plain DELETE of a connected vertex fails and rolls back.
    assert!(e.execute("MATCH (p:Post) DELETE p").is_err());
    assert_eq!(e.graph().vertex_count(), 2);
    let r = e.execute("MATCH (p:Post) DETACH DELETE p").unwrap();
    assert_eq!(r.stats.nodes_deleted, 1);
    assert_eq!(e.graph().vertex_count(), 1);
    assert_eq!(e.graph().edge_count(), 0);
}

#[test]
fn remove_property_and_labels() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:Post:Hot {lang: 'en'})").unwrap();
    e.execute("MATCH (p:Post) REMOVE p.lang, p:Hot").unwrap();
    let res = e.query("MATCH (p:Post) RETURN p.lang").unwrap();
    assert_eq!(res.rows[0].get(0), &Value::Null);
    let res = e.query("MATCH (p:Hot) RETURN p").unwrap();
    assert!(res.rows.is_empty());
}

#[test]
fn views_are_maintained_through_execute() {
    let mut e = GraphEngine::new();
    let view = e
        .register_view("en-posts", "MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
        .unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 0);
    e.execute("CREATE (:Post {lang: 'en'})").unwrap();
    e.execute("CREATE (:Post {lang: 'de'})").unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 1);
    e.execute("MATCH (p:Post) SET p.lang = 'en'").unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 2);
}

#[test]
fn aggregate_view_maintains_counts() {
    let mut e = GraphEngine::new();
    let view = e
        .register_view(
            "by-lang",
            "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
        )
        .unwrap();
    e.execute("CREATE (:Post {lang: 'en'})").unwrap();
    e.execute("CREATE (:Post {lang: 'en'})").unwrap();
    e.execute("CREATE (:Post {lang: 'de'})").unwrap();
    let rows = e.view_results(view).unwrap();
    assert_eq!(rows.len(), 2);
    let en = rows
        .iter()
        .find(|r| r.get(0) == &Value::str("en"))
        .expect("en group");
    assert_eq!(en.get(1), &Value::Int(2));
}

#[test]
fn order_by_works_one_shot_but_not_as_view() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:Post {len: 3})").unwrap();
    e.execute("CREATE (:Post {len: 1})").unwrap();
    e.execute("CREATE (:Post {len: 2})").unwrap();
    // One-shot with ORDER BY ... LIMIT: fine via the baseline.
    let res = e
        .query("MATCH (p:Post) RETURN p.len AS len ORDER BY len DESC LIMIT 2")
        .unwrap();
    let lens: Vec<_> = res.rows.iter().map(|r| r.get(0).clone()).collect();
    assert_eq!(lens, vec![Value::Int(3), Value::Int(2)]);
    // As a view: rejected with NotMaintainable (the paper's trade-off).
    let err = e
        .register_view(
            "topk",
            "MATCH (p:Post) RETURN p.len AS len ORDER BY len LIMIT 2",
        )
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Algebra(pgq_algebra::AlgebraError::NotMaintainable(_))
    ));
}

#[test]
fn duplicate_view_names_rejected() {
    let mut e = GraphEngine::new();
    e.register_view("v", "MATCH (p:Post) RETURN p").unwrap();
    assert!(matches!(
        e.register_view("v", "MATCH (p:Post) RETURN p"),
        Err(EngineError::DuplicateView(_))
    ));
}

#[test]
fn drop_view_stops_maintenance() {
    let mut e = GraphEngine::new();
    let v = e.register_view("v", "MATCH (p:Post) RETURN p").unwrap();
    e.drop_view(v).unwrap();
    assert!(e.view_results(v).is_err());
    // Updates still work with no views registered.
    e.execute("CREATE (:Post)").unwrap();
}

#[test]
fn explain_renders_three_stages() {
    let e = GraphEngine::new();
    let text = e
        .explain("MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
        .unwrap();
    assert!(text.contains("Stage 1: GRA"));
    assert!(text.contains("Stage 2: NRA"));
    assert!(text.contains("Stage 3: FRA"));
    assert!(text.contains("incrementally maintainable"));
}

#[test]
fn parse_errors_carry_position() {
    let mut e = GraphEngine::new();
    let err = e.execute("MATCH (p:Post RETURN p").unwrap_err();
    assert!(matches!(err, EngineError::Parse(_)));
}

#[test]
fn unsupported_constructs_are_reported() {
    let e = GraphEngine::new();
    assert!(matches!(
        e.query("MATCH (a) OPTIONAL MATCH (a)-[:R]->(b) RETURN a, b"),
        Err(EngineError::Algebra(
            pgq_algebra::AlgebraError::Unsupported(_)
        ))
    ));
    assert!(matches!(
        e.query("MATCH (a) WHERE a.x = $x RETURN a"),
        Err(EngineError::Algebra(
            pgq_algebra::AlgebraError::Unsupported(_)
        ))
    ));
}

#[test]
fn failed_update_rolls_back_and_views_unaffected() {
    let mut e = GraphEngine::new();
    let view = e.register_view("v", "MATCH (p:Post) RETURN p").unwrap();
    e.execute("CREATE (:Post)-[:REPLY]->(:Comm)").unwrap();
    assert_eq!(e.view_results(view).unwrap().len(), 1);
    // DELETE without DETACH fails mid-transaction; nothing must change.
    assert!(e.execute("MATCH (p:Post) DELETE p").is_err());
    assert_eq!(e.view_results(view).unwrap().len(), 1);
    assert_eq!(e.graph().vertex_count(), 2);
}

#[test]
fn multiple_views_maintained_together() {
    let mut e = GraphEngine::new();
    let v1 = e.register_view("posts", "MATCH (p:Post) RETURN p").unwrap();
    let v2 = e
        .register_view("pairs", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        .unwrap();
    let v3 = e
        .register_view("count", "MATCH (c:Comm) RETURN count(*) AS n")
        .unwrap();
    e.execute("CREATE (:Post {lang:'en'})-[:REPLY]->(:Comm)")
        .unwrap();
    assert_eq!(e.view_results(v1).unwrap().len(), 1);
    assert_eq!(e.view_results(v2).unwrap().len(), 1);
    assert_eq!(e.view_results(v3).unwrap()[0].get(0), &Value::Int(1));
    assert_eq!(e.views().count(), 3);
}

#[test]
fn view_by_name_lookup() {
    let mut e = GraphEngine::new();
    let v = e.register_view("named", "MATCH (p:Post) RETURN p").unwrap();
    assert_eq!(e.view_by_name("named"), Some(v));
    assert_eq!(e.view_by_name("other"), None);
    assert_eq!(e.view_query(v).unwrap(), "MATCH (p:Post) RETURN p");
}

#[test]
fn unwind_literal_list() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:Post)").unwrap();
    let res = e
        .query("MATCH (p:Post) UNWIND [1, 2, 3] AS x RETURN x")
        .unwrap();
    assert_eq!(res.rows.len(), 3);
}

#[test]
fn engine_shares_nodes_across_identical_views() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:Post {lang:'en'})-[:REPLY]->(:Comm {lang:'en'})")
        .unwrap();
    let v1 = e
        .register_view("t1", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        .unwrap();
    let nodes_single = e.network_node_count();
    let v2 = e
        .register_view("t2", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        .unwrap();
    let v3 = e
        .register_view("t3", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        .unwrap();
    assert_eq!(
        e.network_node_count(),
        nodes_single,
        "identical views must share one operator chain"
    );

    // All three views stay correct under maintenance through the shared
    // chain.
    e.execute("CREATE (:Post {lang:'de'})-[:REPLY]->(:Comm {lang:'de'})")
        .unwrap();
    for v in [v1, v2, v3] {
        assert_eq!(e.view_results(v).unwrap().len(), 2);
    }
    assert_eq!(e.view(v1).unwrap().results(), e.view(v2).unwrap().results());

    // Lifecycle: dropping all but one keeps the chain; dropping the
    // last referencing view releases it.
    e.drop_view(v1).unwrap();
    e.drop_view(v2).unwrap();
    assert_eq!(e.network_node_count(), nodes_single);
    assert_eq!(e.view_results(v3).unwrap().len(), 2);
    e.drop_view(v3).unwrap();
    assert_eq!(e.network_node_count(), 0);

    // Re-registering after a full teardown rebuilds from the graph.
    let v4 = e
        .register_view("t4", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c")
        .unwrap();
    assert_eq!(e.view_results(v4).unwrap().len(), 2);
    assert_eq!(e.network_node_count(), nodes_single);
}

#[test]
fn dropped_view_does_not_disturb_overlapping_survivor() {
    let mut e = GraphEngine::new();
    e.execute("CREATE (:Post {lang:'en'})-[:REPLY]->(:Comm {lang:'en'})")
        .unwrap();
    // Same MATCH prefix, different RETURN: the π differs, everything
    // below is shared.
    let keep = e
        .register_view("keep", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p")
        .unwrap();
    let drop = e
        .register_view("drop", "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN c")
        .unwrap();
    let with_both = e.network_node_count();
    e.drop_view(drop).unwrap();
    assert!(e.network_node_count() < with_both, "drop's π is released");
    // The survivor keeps maintaining correctly.
    e.execute("CREATE (:Post {lang:'fr'})-[:REPLY]->(:Comm {lang:'fr'})")
        .unwrap();
    assert_eq!(e.view_results(keep).unwrap().len(), 2);
}
