//! Experiment E1: exact reproduction of the paper's Section 2 running
//! example — the example graph (F1), the example query, and the result
//! table (T1) — plus incremental maintenance of that result under
//! updates.

use pgq::prelude::*;
use pgq_common::intern::Symbol;
use pgq_graph::props::Properties;
use pgq_workloads::example::{paper_example_graph, EXAMPLE_QUERY};

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

#[test]
fn result_table_t1_matches_paper() {
    let (graph, ids) = paper_example_graph();
    let mut engine = pgq_core::GraphEngine::from_graph(graph);
    let view = engine.register_view("t1", EXAMPLE_QUERY).unwrap();
    let rows = engine.view_results(view).unwrap();

    // The paper's result table: p=1 t=[1,2]; p=1 t=[1,2,3].
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert_eq!(row.get(0).as_node(), Some(ids.post), "p column");
    }
    let paths: Vec<String> = rows.iter().map(|r| r.get(1).to_string()).collect();
    let expect_short = format!("[{}, {}]", ids.post.raw(), ids.comm1.raw());
    let expect_long = format!(
        "[{}, {}, {}]",
        ids.post.raw(),
        ids.comm1.raw(),
        ids.comm2.raw()
    );
    assert!(paths.contains(&expect_short), "{paths:?}");
    assert!(paths.contains(&expect_long), "{paths:?}");
}

#[test]
fn baseline_evaluator_agrees_with_view() {
    let (graph, _) = paper_example_graph();
    let engine = pgq_core::GraphEngine::from_graph(graph);
    let result = engine.query(EXAMPLE_QUERY).unwrap();
    assert_eq!(result.columns, vec!["p".to_string(), "t".to_string()]);
    assert_eq!(result.rows.len(), 2);
}

#[test]
fn language_mismatch_filters_row() {
    let (graph, ids) = paper_example_graph();
    let mut engine = pgq_core::GraphEngine::from_graph(graph);
    let view = engine.register_view("t1", EXAMPLE_QUERY).unwrap();
    // Retag the deepest comment: its row must vanish (FGN update).
    let mut tx = Transaction::new();
    tx.set_vertex_prop(ids.comm2, s("lang"), Value::str("de"));
    engine.apply(&tx).unwrap();
    assert_eq!(engine.view_results(view).unwrap().len(), 1);
    // Retag back: the row returns.
    let mut tx = Transaction::new();
    tx.set_vertex_prop(ids.comm2, s("lang"), Value::str("en"));
    engine.apply(&tx).unwrap();
    assert_eq!(engine.view_results(view).unwrap().len(), 2);
}

#[test]
fn inserting_a_deeper_reply_extends_the_thread() {
    let (graph, ids) = paper_example_graph();
    let mut engine = pgq_core::GraphEngine::from_graph(graph);
    let view = engine.register_view("t1", EXAMPLE_QUERY).unwrap();
    let mut tx = Transaction::new();
    let c4 = tx.create_vertex(
        [s("Comm")],
        Properties::from_iter([("lang", Value::str("en"))]),
    );
    tx.create_edge(ids.comm2, c4, s("REPLY"), Properties::new());
    engine.apply(&tx).unwrap();
    // New row: the path [post, comm1, comm2, c4].
    assert_eq!(engine.view_results(view).unwrap().len(), 3);
}

#[test]
fn deleting_the_middle_edge_atomically_removes_paths() {
    let (graph, ids) = paper_example_graph();
    let mut engine = pgq_core::GraphEngine::from_graph(graph);
    let view = engine.register_view("t1", EXAMPLE_QUERY).unwrap();
    // Delete the REPLY edge comm1→comm2: paths through it disappear as
    // atomic units (the paper's path model).
    let edge = engine.graph().out_edges(ids.comm1)[0];
    let mut tx = Transaction::new();
    tx.delete_edge(edge);
    engine.apply(&tx).unwrap();
    let rows = engine.view_results(view).unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows[0]
        .get(1)
        .to_string()
        .contains(&ids.comm1.raw().to_string()));
}

#[test]
fn path_unwinding_is_supported() {
    // The paper highlights path unwinding as a preserved feature.
    let (graph, _) = paper_example_graph();
    let engine = pgq_core::GraphEngine::from_graph(graph);
    let result = engine
        .query(
            "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang \
             UNWIND nodes(t) AS n RETURN n",
        )
        .unwrap();
    // Paths [1,2] and [1,2,3] unwind to 2 + 3 = 5 rows.
    assert_eq!(result.rows.len(), 5);
}

#[test]
fn nested_relations_alpha_beta_roundtrip() {
    // T2: the α/β nested base relations — our CSV text format plays the
    // same role; the example graph round-trips through it.
    let (graph, _) = paper_example_graph();
    let text = pgq_graph::csv::to_text(&graph).unwrap();
    assert!(text.contains("Post"));
    assert!(text.contains("REPLY"));
    let g2 = pgq_graph::csv::from_text(&text).unwrap();
    assert_eq!(g2.vertex_count(), 3);
    assert_eq!(g2.edge_count(), 2);
}
