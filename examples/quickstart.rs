//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Section 2 example graph, registers the example query as an
//! incrementally maintained view, prints the paper's result table, then
//! applies a few updates and shows the view following along.
//!
//! Run with `cargo run --example quickstart`.

use pgq::prelude::*;
use pgq_common::intern::Symbol;
use pgq_graph::props::Properties;
use pgq_workloads::example::{paper_example_graph, EXAMPLE_QUERY};

fn print_view(engine: &GraphEngine, view: ViewId, caption: &str) {
    println!("\n{caption}");
    println!("  p      t");
    for row in engine.view_results(view).expect("view exists") {
        println!("  {:<6} {}", row.get(0).to_string(), row.get(1));
    }
}

fn main() {
    let s = Symbol::intern;
    let (graph, ids) = paper_example_graph();
    let mut engine = GraphEngine::from_graph(graph);

    println!("query: {EXAMPLE_QUERY}");
    let view = engine.register_view("threads", EXAMPLE_QUERY).unwrap();
    print_view(&engine, view, "initial result (the paper's Table 1):");

    // A new reply in the same language extends the thread.
    let mut tx = Transaction::new();
    let c4 = tx.create_vertex(
        [s("Comm")],
        Properties::from_iter([("lang", Value::str("en"))]),
    );
    tx.create_edge(ids.comm2, c4, s("REPLY"), Properties::new());
    engine.apply(&tx).unwrap();
    print_view(&engine, view, "after adding a deeper reply:");

    // A fine-grained property update (FGN): retagging one comment
    // retracts exactly the affected rows.
    let mut tx = Transaction::new();
    tx.set_vertex_prop(ids.comm1, s("lang"), Value::str("de"));
    engine.apply(&tx).unwrap();
    print_view(&engine, view, "after retagging comment 2 to lang='de':");

    // Deleting an edge removes paths through it atomically.
    let mut tx = Transaction::new();
    tx.set_vertex_prop(ids.comm1, s("lang"), Value::str("en"));
    engine.apply(&tx).unwrap();
    let edge = engine.graph().out_edges(ids.comm1)[0];
    let mut tx = Transaction::new();
    tx.delete_edge(edge);
    engine.apply(&tx).unwrap();
    print_view(&engine, view, "after deleting the reply edge 2→3:");

    println!("\nEXPLAIN of the example query:\n");
    println!("{}", engine.explain(EXAMPLE_QUERY).unwrap());
}
