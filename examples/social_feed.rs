//! Social-network scenario (LDBC-SNB-shaped, experiment E6's setting).
//!
//! Generates a synthetic social network, registers three views (the
//! paper's thread query, a friends-like join, and an aggregation), then
//! streams updates through the engine, comparing the incremental
//! maintenance cost against recomputing from scratch.
//!
//! Run with `cargo run --release --example social_feed`.

use std::time::Instant;

use pgq_core::GraphEngine;
use pgq_eval::evaluate_consolidated;
use pgq_graph::stats::GraphStats;
use pgq_workloads::social::{generate_social, queries, SocialParams};

fn main() {
    let params = SocialParams::scale(0.5, 42);
    let mut net = generate_social(params);
    println!("generated social network:\n{}", GraphStats::of(&net.graph));

    let stream = net.update_stream(200, (4, 2, 3, 1));
    let mut engine = GraphEngine::from_graph(net.graph.clone());

    let t0 = Instant::now();
    let threads = engine
        .register_view("threads", queries::SAME_LANG_THREAD)
        .unwrap();
    let likes = engine
        .register_view("friend-likes", queries::FRIEND_LIKES)
        .unwrap();
    let by_lang = engine
        .register_view("posts-per-lang", queries::POSTS_PER_LANG)
        .unwrap();
    println!(
        "\nregistered 3 views in {:?} (initial evaluation included)",
        t0.elapsed()
    );
    for (_, v) in engine.views() {
        println!(
            "  {:<16} {:>6} rows, {:>8} memory tuples",
            v.name(),
            v.row_count(),
            v.memory_tuples()
        );
    }

    // Stream updates through the engine (incremental path).
    let t0 = Instant::now();
    for tx in &stream {
        engine.apply(tx).unwrap();
    }
    let ivm_time = t0.elapsed();
    println!(
        "\napplied {} update transactions incrementally in {:?} ({:.1} µs/tx)",
        stream.len(),
        ivm_time,
        ivm_time.as_micros() as f64 / stream.len() as f64
    );

    // Recompute path: re-evaluate one view from scratch after every
    // transaction (what a non-incremental engine must do).
    let compiled = engine.view_compiled(threads).unwrap().clone();
    let mut graph = net.graph.clone();
    let t0 = Instant::now();
    for tx in &stream {
        graph.apply(tx).unwrap();
        let _ = evaluate_consolidated(&compiled.fra, &graph);
    }
    let recompute_time = t0.elapsed();
    println!(
        "recomputing only the thread view from scratch per tx: {:?} ({:.1} µs/tx)",
        recompute_time,
        recompute_time.as_micros() as f64 / stream.len() as f64
    );
    println!(
        "speed-up of IVM (all 3 views!) over recompute (1 view): {:.1}×",
        recompute_time.as_secs_f64() / ivm_time.as_secs_f64()
    );

    // Verify the incremental result agrees with recompute.
    let want = evaluate_consolidated(&compiled.fra, engine.graph());
    assert_eq!(engine.view(threads).unwrap().results(), want);
    println!("\ndifferential check passed: view == recompute");

    println!("\nfinal view sizes:");
    for id in [threads, likes, by_lang] {
        let v = engine.view(id).unwrap();
        println!("  {:<16} {:>6} rows", v.name(), v.row_count());
    }
}
