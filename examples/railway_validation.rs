//! Railway well-formedness validation (Train-Benchmark-shaped,
//! experiment E5's setting) — the paper's motivating use case of checking
//! integrity constraints continuously.
//!
//! Registers the validation queries as views, injects faults and repairs,
//! and shows violations appearing and disappearing incrementally.
//!
//! Run with `cargo run --release --example railway_validation`.

use pgq_common::intern::Symbol;
use pgq_common::value::Value;
use pgq_core::GraphEngine;
use pgq_graph::stats::GraphStats;
use pgq_graph::tx::Transaction;
use pgq_workloads::railway::{generate_railway, queries, RailwayParams};

fn main() {
    let mut rw = generate_railway(RailwayParams::size(4, 7));
    println!("generated railway model:\n{}", GraphStats::of(&rw.graph));

    let seg = rw.segments[0];
    let mut engine = GraphEngine::from_graph(rw.graph.clone());
    let pos_length = engine
        .register_view("PosLength", queries::POS_LENGTH)
        .unwrap();
    let switch_set = engine
        .register_view("SwitchSet", queries::SWITCH_SET)
        .unwrap();
    let route_sensor = engine
        .register_view("RouteSensor", queries::ROUTE_SENSOR)
        .unwrap();
    let connected = engine
        .register_view("ConnectedSegments", queries::CONNECTED_SEGMENTS)
        .unwrap();

    println!("\ninitial validation results:");
    for id in [pos_length, switch_set, route_sensor, connected] {
        let v = engine.view(id).unwrap();
        println!("  {:<18} {:>6} rows", v.name(), v.row_count());
    }

    // Inject a PosLength fault by hand and watch the view react.
    println!("\ninjecting a PosLength fault on {seg} ...");
    let mut tx = Transaction::new();
    tx.set_vertex_prop(seg, Symbol::intern("length"), Value::Int(-1));
    let deltas = engine.apply_with_deltas(&tx).unwrap();
    for (id, delta) in deltas {
        if !delta.is_empty() {
            let name = engine.view(id).unwrap().name().to_string();
            for (row, m) in delta.iter() {
                println!("  {name}: {} {row}", if *m > 0 { "+" } else { "-" });
            }
        }
    }

    println!("repairing it ...");
    let mut tx = Transaction::new();
    tx.set_vertex_prop(seg, Symbol::intern("length"), Value::Int(120));
    let deltas = engine.apply_with_deltas(&tx).unwrap();
    for (id, delta) in deltas {
        if !delta.is_empty() {
            let name = engine.view(id).unwrap().name().to_string();
            for (row, m) in delta.iter() {
                println!("  {name}: {} {row}", if *m > 0 { "+" } else { "-" });
            }
        }
    }

    // Now run a whole fault/repair stream.
    let stream = rw.fault_stream(300);
    let t0 = std::time::Instant::now();
    let mut delta_rows = 0usize;
    for tx in &stream {
        for (_, d) in engine.apply_with_deltas(tx).unwrap() {
            delta_rows += d.len();
        }
    }
    println!(
        "\napplied {} faults/repairs in {:?}; {} view-row changes total",
        stream.len(),
        t0.elapsed(),
        delta_rows
    );
    println!("\nfinal validation results:");
    for id in [pos_length, switch_set, route_sensor, connected] {
        let v = engine.view(id).unwrap();
        println!("  {:<18} {:>6} rows", v.name(), v.row_count());
    }
}
