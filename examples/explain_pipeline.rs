//! Tour of the compilation pipeline: prints GRA / NRA / FRA (and the
//! maintainability verdict) for a spectrum of queries — including the
//! ones the paper's fragment rejects, to show *why*.
//!
//! Run with `cargo run --example explain_pipeline`.

use pgq_core::GraphEngine;

fn main() {
    let engine = GraphEngine::new();
    let queries = [
        // The paper's running example.
        "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
        // Plain join with property filter.
        "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.country = b.country RETURN a, b",
        // Aggregation extension.
        "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS posts",
        // Path unwinding.
        "MATCH t = (p:Post)-[:REPLY*1..3]->(c:Comm) UNWIND nodes(t) AS n RETURN DISTINCT n",
        // WITH extension (HAVING pattern).
        "MATCH (p:Post) WITH p.lang AS lang, count(*) AS n WHERE n > 3 RETURN lang, n",
        // Negation extension (incremental antijoin).
        "MATCH (sw:Switch) WHERE NOT exists((sw)-[:monitoredBy]->(:Sensor)) RETURN sw",
        // Outside the maintainable fragment: top-k.
        "MATCH (p:Post) RETURN p.len AS len ORDER BY len DESC LIMIT 3",
    ];
    for q in queries {
        println!("{}", "=".repeat(72));
        println!("QUERY: {q}\n");
        match engine.explain(q) {
            Ok(text) => println!("{text}"),
            Err(e) => println!("rejected: {e}\n"),
        }
    }
}
