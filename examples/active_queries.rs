//! Active queries and negation: continuous well-formedness monitoring
//! with callbacks, Graphflow-style, using the Train Benchmark's original
//! *negative* validation queries (expressible thanks to the antijoin
//! extension).
//!
//! Run with `cargo run --release --example active_queries`.

use std::sync::{Arc, Mutex};

use pgq_core::GraphEngine;
use pgq_workloads::railway::{generate_railway, queries as rq, RailwayParams};

fn main() {
    let mut rw = generate_railway(RailwayParams::size(3, 99));
    let mut engine = GraphEngine::from_graph(rw.graph.clone());

    // The original (negative) RouteSensor constraint: a monitored switch
    // on a route whose sensor the route does not require.
    println!("query: {}\n", rq::ROUTE_SENSOR_NEG);
    let violations = engine
        .register_view("RouteSensor", rq::ROUTE_SENSOR_NEG)
        .unwrap();
    println!(
        "initial violations: {}",
        engine.view(violations).unwrap().row_count()
    );

    // Subscribe: every appearing violation pages the (pretend) operator.
    let pager: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = pager.clone();
    engine
        .subscribe(violations, move |delta| {
            let mut pager = sink.lock().unwrap();
            for (row, _) in &delta.inserted {
                pager.push(format!("NEW violation:   {row}"));
            }
            for (row, _) in &delta.removed {
                pager.push(format!("repaired:        {row}"));
            }
        })
        .unwrap();

    // Stream faults/repairs through the engine.
    let stream = rw.fault_stream(40);
    for tx in &stream {
        engine.apply(tx).unwrap();
    }

    let pager = pager.lock().unwrap();
    println!(
        "\nafter {} faults/repairs, {} notifications:",
        stream.len(),
        pager.len()
    );
    for line in pager.iter().take(12) {
        println!("  {line}");
    }
    if pager.len() > 12 {
        println!("  ... and {} more", pager.len() - 12);
    }
    println!(
        "\nfinal violations: {}",
        engine.view(violations).unwrap().row_count()
    );
    println!("\nnetwork statistics:");
    println!("{}", engine.view_stats(violations).unwrap());
}
