#![warn(missing_docs)]
//! # pgq — Incremental View Maintenance for Property Graph Queries
//!
//! Umbrella crate re-exporting the whole stack. See [`pgq_core::GraphEngine`]
//! for the main entry point.
//!
//! This workspace is a from-scratch Rust reproduction of
//! *Incremental View Maintenance for Property Graph Queries*
//! (Gábor Szárnyas, SIGMOD 2018 Student Research Competition,
//! arXiv:1712.04108).
//!
//! ```
//! use pgq::prelude::*;
//!
//! let mut engine = GraphEngine::new();
//! engine.execute("CREATE (:Post {lang: 'en', id: 1})").unwrap();
//! let view = engine
//!     .register_view("posts", "MATCH (p:Post) RETURN p.lang")
//!     .unwrap();
//! let rows = engine.view_results(view).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub use pgq_algebra as algebra;
pub use pgq_common as common;
pub use pgq_core as core;
pub use pgq_eval as eval;
pub use pgq_graph as graph;
pub use pgq_ivm as ivm;
pub use pgq_parser as parser;
pub use pgq_workloads as workloads;

/// Convenience re-exports for typical users.
pub mod prelude {
    pub use pgq_common::value::Value;
    pub use pgq_core::{EngineError, GraphEngine, ViewId};
    pub use pgq_graph::store::PropertyGraph;
    pub use pgq_graph::tx::Transaction;
}
