//! `pgq-shell` — a minimal interactive shell over the engine, in the
//! spirit of `cypher-shell`, with extra commands for the IVM machinery.
//!
//! ```text
//! $ cargo run --bin pgq_shell
//! pgq> CREATE (:Post {lang: 'en'})-[:REPLY]->(:Comm {lang: 'en'})
//! +1 nodes...
//! pgq> :view threads MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t
//! pgq> :watch threads
//! pgq> MATCH (c:Comm) CREATE (c)-[:REPLY]->(:Comm {lang: 'en'})
//! [threads] + ⟨v0, [0, 1, 2]⟩
//! ```
//!
//! Commands: `:view NAME QUERY`, `:views`, `:results NAME`, `:watch
//! NAME`, `:explain QUERY`, `:stats NAME`, `:save FILE`, `:load FILE`,
//! `:help`, `:quit`. `EXPLAIN <query>` renders the full pipeline
//! including the cost-based plan with per-operator cardinality
//! estimates. Anything else is executed as an openCypher statement.

use std::io::{self, BufRead, Write};
use std::sync::{Arc, Mutex};

use pgq::prelude::*;
use pgq_core::ViewDelta;

fn print_table(columns: &[String], rows: &[pgq_common::tuple::Tuple]) {
    if columns.is_empty() && rows.is_empty() {
        return;
    }
    let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|t| t.values().iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!(" {c:<w$} |"));
        }
        s
    };
    println!("{}", line(columns));
    println!(
        "|{}",
        widths
            .iter()
            .map(|w| format!("{}|", "-".repeat(w + 2)))
            .collect::<String>()
    );
    for row in rendered {
        println!("{}", line(&row));
    }
    println!(
        "({} row{})",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" }
    );
}

fn help() {
    println!(
        "commands:\n  \
         :view NAME QUERY   register an incrementally maintained view\n  \
         :views             list registered views\n  \
         :results NAME      print a view's current rows\n  \
         :watch NAME        print the view's deltas after every update\n  \
         :explain QUERY     show the GRA/NRA/FRA pipeline\n  \
         :stats NAME        per-operator memory statistics\n  \
         :save FILE         dump the graph in text format\n  \
         :load FILE         load a graph dump (replaces current graph)\n  \
         :health            durability status (generation, WAL size, degraded?)\n  \
         :heal              clear read-only degraded mode (re-snapshots)\n  \
         :help              this text\n  \
         :quit              exit\n\
         EXPLAIN QUERY      like :explain (pipeline + cost-based plan estimates)\n\
         anything else is executed as an openCypher statement"
    );
}

fn main() {
    // PGQ_DATA_DIR arms durability: WAL + snapshots in that directory,
    // with warm recovery of standing views on restart.
    let mut engine = match std::env::var_os("PGQ_DATA_DIR") {
        Some(dir) => match GraphEngine::open_durable(std::path::PathBuf::from(dir)) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("failed to open durable engine: {e}");
                std::process::exit(1);
            }
        },
        None => GraphEngine::new(),
    };
    let watch_log: Arc<Mutex<Vec<ViewDelta>>> = Arc::new(Mutex::new(Vec::new()));
    let stdin = io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!("pgq-shell — :help for commands");
    }
    loop {
        if interactive {
            print!("pgq> ");
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            let mut parts = rest.splitn(2, ' ');
            let cmd = parts.next().unwrap_or("");
            let arg = parts.next().unwrap_or("").trim();
            match cmd {
                "quit" | "q" | "exit" => break,
                "help" => help(),
                "view" => {
                    let mut p = arg.splitn(2, ' ');
                    let name = p.next().unwrap_or("").to_string();
                    let query = p.next().unwrap_or("").trim();
                    if name.is_empty() || query.is_empty() {
                        println!("usage: :view NAME QUERY");
                        continue;
                    }
                    match engine.register_view(&name, query) {
                        Ok(id) => println!(
                            "view `{name}` registered; {} rows",
                            engine.view(id).map(|v| v.row_count()).unwrap_or(0)
                        ),
                        Err(e) => println!("error: {e}"),
                    }
                }
                "views" => {
                    for (_, v) in engine.views() {
                        println!(
                            "  {:<20} {:>6} rows  {:>9} memory tuples",
                            v.name(),
                            v.row_count(),
                            v.memory_tuples()
                        );
                    }
                }
                "results" => match engine.view_by_name(arg) {
                    Some(id) => {
                        let columns = engine
                            .view(id)
                            .map(|v| v.columns().to_vec())
                            .unwrap_or_default();
                        let rows = engine.view_results(id).unwrap_or_default();
                        print_table(&columns, &rows);
                    }
                    None => println!("unknown view `{arg}`"),
                },
                "watch" => match engine.view_by_name(arg) {
                    Some(id) => {
                        let sink = watch_log.clone();
                        let _ = engine.subscribe(id, move |d| {
                            sink.lock().unwrap().push(d.clone());
                        });
                        println!("watching `{arg}`");
                    }
                    None => println!("unknown view `{arg}`"),
                },
                "explain" => match engine.explain(arg) {
                    Ok(text) => println!("{text}"),
                    Err(e) => println!("error: {e}"),
                },
                "stats" => match engine.view_by_name(arg) {
                    Some(id) => match engine.view_stats(id) {
                        Ok(s) => println!("{s}"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("unknown view `{arg}`"),
                },
                "save" => match pgq_graph::csv::to_text(engine.graph()) {
                    Ok(text) => match std::fs::write(arg, text) {
                        Ok(()) => println!("saved to {arg}"),
                        Err(e) => println!("write error: {e}"),
                    },
                    Err(e) => println!("error: {e}"),
                },
                "load" => match std::fs::read_to_string(arg) {
                    Ok(text) => match pgq_graph::csv::from_text(&text) {
                        Ok(g) => {
                            println!(
                                "loaded {} vertices, {} edges (views reset)",
                                g.vertex_count(),
                                g.edge_count()
                            );
                            engine = GraphEngine::from_graph(g);
                        }
                        Err(e) => println!("parse error: {e}"),
                    },
                    Err(e) => println!("read error: {e}"),
                },
                "health" => {
                    match engine.durability_health() {
                        Some(h) => {
                            println!(
                            "generation {} | {} WAL records ({} bytes) | compaction {} | flush window {}",
                            h.generation,
                            h.wal_records,
                            h.wal_len,
                            if h.compact { "on" } else { "off" },
                            h.flush_window,
                        );
                            match &h.degraded {
                            Some(e) => println!("DEGRADED (read-only) after: {e}\nrun :heal once the disk is fixed"),
                            None => println!("healthy ({} consecutive commit failures)", h.fail_streak),
                        }
                            if let Some(e) = &h.last_error {
                                println!("last durability error: {e}");
                            }
                            if let Some(r) = engine.recovery_report() {
                                if !r.is_pristine() {
                                    println!("recovery repaired this store at open: {r:?}");
                                }
                            }
                        }
                        None => println!("in-memory engine (set PGQ_DATA_DIR to arm durability)"),
                    }
                }
                "heal" => match engine.reset_durability() {
                    Ok(()) => println!("durability reset: fresh snapshot cut, writes re-enabled"),
                    Err(e) => println!("error: {e}"),
                },
                other => println!("unknown command :{other} (:help)"),
            }
            continue;
        }
        // `EXPLAIN <query>` — render the full pipeline including the
        // cost-based plan with estimated cardinalities (same output as
        // `:explain`).
        if line
            .get(..7)
            .is_some_and(|kw| kw.eq_ignore_ascii_case("EXPLAIN"))
            && line.as_bytes().get(7) == Some(&b' ')
        {
            match engine.explain(line[8..].trim()) {
                Ok(text) => println!("{text}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        // Plain statement(s) — `;`-separated scripts are fine.
        match engine.execute_script(line) {
            Ok(results) => {
                for result in results {
                    if !result.rows.is_empty() || !result.columns.is_empty() {
                        print_table(&result.columns, &result.rows);
                    } else {
                        let st = result.stats;
                        let mut parts = Vec::new();
                        for (n, what) in [
                            (st.nodes_created, "nodes created"),
                            (st.relationships_created, "relationships created"),
                            (st.nodes_deleted, "nodes deleted"),
                            (st.relationships_deleted, "relationships deleted"),
                            (st.properties_set, "properties set"),
                            (st.labels_added, "labels added"),
                            (st.labels_removed, "labels removed"),
                        ] {
                            if n > 0 {
                                parts.push(format!("{n} {what}"));
                            }
                        }
                        if parts.is_empty() {
                            println!("ok");
                        } else {
                            println!("{}", parts.join(", "));
                        }
                    }
                }
            }
            Err(EngineError::Parse(p)) => println!("{}", p.render(line)),
            Err(e) => println!("error: {e}"),
        }
        // Flush watch notifications.
        for d in watch_log.lock().unwrap().drain(..) {
            for (t, m) in &d.inserted {
                println!(
                    "[{}] + {t}{}",
                    d.view,
                    if *m > 1 {
                        format!(" ×{m}")
                    } else {
                        String::new()
                    }
                );
            }
            for (t, m) in &d.removed {
                println!(
                    "[{}] - {t}{}",
                    d.view,
                    if *m > 1 {
                        format!(" ×{m}")
                    } else {
                        String::new()
                    }
                );
            }
        }
    }
}

/// Cheap interactivity test without extra dependencies: assume
/// interactive unless stdin is redirected (heuristic via env).
fn atty_stdin() -> bool {
    // Portable-enough heuristic without a dependency: treat explicit
    // PGQ_BATCH=1 as non-interactive, otherwise interactive.
    std::env::var_os("PGQ_BATCH").is_none()
}
